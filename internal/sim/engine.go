package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/sla"
)

// Engine is the flat-state simulation core. It assigns dense int indices
// to every VM and PM at construction (their positions in the inventory)
// and keeps all per-tick truth in preallocated slices reused across ticks,
// so the tick hot path — workload fill, occupation, queueing, SLA, power,
// money — performs no per-tick map or slice allocations.
//
// The Engine exposes the index-based view directly (HostIndexOf,
// VMTruthByIndex, PerDCWatts); World wraps it with the historical map-
// shaped API. Truth accessors return views into the Engine's reusable
// buffers: they are valid until the next Step and must not be mutated.
//
// An Engine is not safe for concurrent use.
type Engine struct {
	cfg   Config
	state *cluster.State
	obs   *monitor.Observer
	rt    *rng.Stream

	tick    int
	stepped bool
	ledger  sla.Ledger
	energy  power.Accountant

	migrated int // total migrations started
	// migratedAtLastStep snapshots migrated at the end of each Step so the
	// next Step can attribute newly started migrations to itself even when
	// ApplySchedule ran between the two steps.
	migratedAtLastStep int

	// nVM is the slot high-water mark: slots [0, nVM) have ever held a VM.
	// capVM is the fixed slot capacity (static population + ExtraVMSlots);
	// every per-VM buffer below is sized to capVM at construction, so the
	// workload lifecycle (AdmitVM/RetireVM in handle.go) never reallocates.
	nVM, capVM, nPM, nLoc int
	nActive               int
	vmIDs                 []model.VMID // dense index -> ID
	vmSpecs               []model.VMSpec
	pmSpecs               []model.PMSpec

	// Lifecycle slot state (handle.go): activeVM marks live slots, gens
	// counts (re-)admissions per slot — a VMHandle is (slot, gen) — and
	// freeSlots is the reusable-slot stack. vmByID covers static and
	// dynamic VMs alike.
	activeVM  []bool
	gens      []uint32
	freeSlots []int32
	vmByID    map[model.VMID]int

	// fillIDs/fillRows are the compacted active-slot view handed to the
	// workload generator each tick; rebuilt on admit/retire only.
	fillIDs  []model.VMID
	fillRows []model.LoadVector

	// Placement state, dense mirrors of cluster.State.
	hostOf   []int32   // VM index -> PM index, -1 when unplaced
	guests   [][]int32 // PM index -> guest VM indices, sorted by VMID
	failed   []bool    // PM index -> crashed
	draining []bool    // PM index -> draining (no new placements)
	// nFailed/nDraining mirror the bool slices so the tick summary reports
	// them without a scan.
	nFailed   int
	nDraining int

	// Persistent per-VM dynamics carried across ticks.
	backlog  []float64 // gateway pending-request queue
	downtime []float64 // remaining migration blackout, seconds

	// Per-tick truth, SoA, reused across ticks.
	loadRows  []model.LoadVector // per-VM load vectors, rows of length nLoc
	totals    []model.Load
	required  []model.Resources
	granted   []model.Resources
	used      []model.Resources
	rtProcess []float64
	rtBySrc   []float64 // flattened nVM x nLoc
	slaLvl    []float64
	queueLen  []float64 // reported backlog (0 while unhosted)
	migrating []bool

	pmUsage    []model.Resources
	pmOn       []bool
	pmITWatts  []float64
	pmFacWatts []float64
	pmGuestN   []int

	perDCWatts  []float64
	perDCActive []int

	// Per-DC tick sharding (Config.TickWorkers > 1). pmByDC holds the PM
	// indices of each DC (inventory order within a DC); shardFn is the
	// worker closure, built once so the parallel tick path does not
	// allocate a fresh closure per Step. rtNoise carries the per-guest RT
	// noise draws from the serial pre-pass into the parallel resolution
	// phase, preserving the legacy single-stream draw order exactly.
	workers int
	pmByDC  [][]int32
	shardFn func(w, shard int)
	rtNoise []float64

	// met, when non-nil, receives per-tick counters/gauges and the tick
	// latency at the end of every Step (see SetMetrics). Recording is
	// allocation-free by the obs registry contract.
	met *EngineMetrics
}

// TickSummary is the allocation-free per-tick report of the Engine. The
// per-DC power split lives in Engine.PerDCWatts (a reused slice); World
// folds both into the map-shaped TickStats.
type TickSummary struct {
	Tick          int
	AvgSLA        float64 // request-weighted over VMs
	MinSLA        float64
	FacilityWatts float64
	ActivePMs     int
	Migrations    int // migrations started this tick
	RevenueEUR    float64
	EnergyEUR     float64
	PenaltyEUR    float64
	ProfitEUR     float64
	TotalRPS      float64
	// Availability surface for the fault layer: active VMs without a host
	// this tick, and the current failed/draining host counts.
	UnplacedVMs int
	FailedPMs   int
	DrainingPMs int
}

// NewEngine validates the configuration and builds a fresh engine at tick
// zero with every VM unplaced.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Inventory == nil || cfg.Topology == nil || cfg.Generator == nil {
		return nil, fmt.Errorf("sim: inventory, topology and generator are required")
	}
	if cfg.Power == nil {
		cfg.Power = power.Atom{}
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	if cfg.Noise == (monitor.NoiseConfig{}) {
		// The paper's monitors are noisy by nature (Section IV-B); a zero
		// config means "default distortions", not a perfect oracle.
		cfg.Noise = monitor.DefaultNoise
	}
	if cfg.Inventory.NumDCs() > cfg.Topology.NumDCs() {
		return nil, fmt.Errorf("sim: inventory spans %d DCs but topology has %d",
			cfg.Inventory.NumDCs(), cfg.Topology.NumDCs())
	}
	if cfg.ExtraVMSlots < 0 {
		return nil, fmt.Errorf("sim: negative ExtraVMSlots %d", cfg.ExtraVMSlots)
	}
	inv := cfg.Inventory
	nVM, nPM, nLoc := inv.NumVMs(), inv.NumPMs(), cfg.Topology.NumDCs()
	capVM := nVM + cfg.ExtraVMSlots
	e := &Engine{
		cfg:   cfg,
		state: cluster.NewState(inv),
		obs:   monitor.NewObserver(cfg.Noise, 10, rng.NewNamed(cfg.Seed, "sim/monitor")),
		rt:    rng.NewNamed(cfg.Seed, "sim/rt"),

		nVM: nVM, capVM: capVM, nPM: nPM, nLoc: nLoc,
		nActive: nVM,
		vmIDs:   make([]model.VMID, capVM),
		vmSpecs: make([]model.VMSpec, capVM),
		pmSpecs: inv.PMs(),

		activeVM:  make([]bool, capVM),
		gens:      make([]uint32, capVM),
		freeSlots: make([]int32, 0, capVM),
		vmByID:    make(map[model.VMID]int, capVM),
		fillIDs:   make([]model.VMID, 0, capVM),
		fillRows:  make([]model.LoadVector, 0, capVM),

		hostOf:   make([]int32, capVM),
		guests:   make([][]int32, nPM),
		failed:   make([]bool, nPM),
		draining: make([]bool, nPM),

		backlog:  make([]float64, capVM),
		downtime: make([]float64, capVM),

		loadRows:  make([]model.LoadVector, capVM),
		totals:    make([]model.Load, capVM),
		required:  make([]model.Resources, capVM),
		granted:   make([]model.Resources, capVM),
		used:      make([]model.Resources, capVM),
		rtProcess: make([]float64, capVM),
		rtBySrc:   make([]float64, capVM*nLoc),
		slaLvl:    make([]float64, capVM),
		queueLen:  make([]float64, capVM),
		migrating: make([]bool, capVM),

		pmUsage:    make([]model.Resources, nPM),
		pmOn:       make([]bool, nPM),
		pmITWatts:  make([]float64, nPM),
		pmFacWatts: make([]float64, nPM),
		pmGuestN:   make([]int, nPM),

		perDCWatts:  make([]float64, nLoc),
		perDCActive: make([]int, nLoc),

		workers: cfg.TickWorkers,
		rtNoise: make([]float64, capVM),
	}
	if e.workers < 1 {
		e.workers = 1
	}
	copy(e.vmSpecs, inv.VMs())
	rows := make(model.LoadVector, capVM*nLoc) // one backing array for all rows
	for i := 0; i < capVM; i++ {
		e.hostOf[i] = -1
		e.loadRows[i] = rows[i*nLoc : (i+1)*nLoc : (i+1)*nLoc]
	}
	for i := 0; i < nVM; i++ {
		e.vmIDs[i] = e.vmSpecs[i].ID
		e.activeVM[i] = true
		e.gens[i] = 1
		e.vmByID[e.vmIDs[i]] = i
	}
	// DC shards for the parallel resolution phase: PM indices grouped by
	// DC, inventory order within each group. The PM fleet is immutable, so
	// this is built once.
	e.pmByDC = make([][]int32, nLoc)
	for j := range e.pmSpecs {
		dc := e.pmSpecs[j].DC
		e.pmByDC[dc] = append(e.pmByDC[dc], int32(j))
	}
	e.shardFn = func(_, shard int) {
		for _, j := range e.pmByDC[shard] {
			e.resolvePM(int(j))
		}
	}
	e.rebuildFill()
	return e, nil
}

// SetTickWorkers sets the worker count for the per-DC parallel resolution
// phase of Step. n <= 1 runs the tick serially (the zero-alloc path);
// results are byte-identical at any worker count.
func (e *Engine) SetTickWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// TickWorkers returns the current tick worker count.
func (e *Engine) TickWorkers() int { return e.workers }

// --- static views -----------------------------------------------------------

// State exposes the placement state (for schedulers via the manager).
// Treat it as read-only: placement mutations must go through
// PlaceInitial/ApplySchedule/FailPM, which keep the engine's dense
// mirrors in sync — mutating the State directly desynchronises them.
func (e *Engine) State() *cluster.State { return e.state }

// Observer exposes the monitored view of the world.
func (e *Engine) Observer() *monitor.Observer { return e.obs }

// Topology exposes the network substrate.
func (e *Engine) Topology() *network.Topology { return e.cfg.Topology }

// Inventory exposes the fleet description.
func (e *Engine) Inventory() *cluster.Inventory { return e.cfg.Inventory }

// Params exposes the ground-truth constants.
func (e *Engine) Params() Params { return e.cfg.Params }

// SetParams swaps the ground-truth behavioural constants mid-run — the
// injection point for "hardware or middleware changes" (Section IV-B):
// a kernel update altering the memory footprint, a hypervisor upgrade
// changing its overhead. Learned models trained before the change are
// silently wrong after it; the online-learning extension detects and
// repairs this.
func (e *Engine) SetParams(p Params) { e.cfg.Params = p }

// Tick returns the current simulation tick.
func (e *Engine) Tick() int { return e.tick }

// Ledger returns a copy of the money accounting so far.
func (e *Engine) Ledger() sla.Ledger { return e.ledger }

// TotalMigrations returns the number of migrations started since t=0.
func (e *Engine) TotalMigrations() int { return e.migrated }

// AvgFacilityWatts returns the mean facility draw per tick so far.
func (e *Engine) AvgFacilityWatts() float64 { return e.energy.AvgWatts(TickHours) }

// NumVMs returns the dense VM index space size (the slot high-water
// mark). Under workload churn some slots in [0, NumVMs()) are inactive —
// iterate with ActiveVM, or use NumActiveVMs for the live count.
func (e *Engine) NumVMs() int { return e.nVM }

// NumPMs returns the dense PM index space size.
func (e *Engine) NumPMs() int { return e.nPM }

// NumLocations returns the number of client locations (topology DCs).
func (e *Engine) NumLocations() int { return e.nLoc }

// VMSpecAt returns the VM spec at a dense index.
func (e *Engine) VMSpecAt(i int) model.VMSpec { return e.vmSpecs[i] }

// PMSpecAt returns the PM spec at a dense index.
func (e *Engine) PMSpecAt(j int) model.PMSpec { return e.pmSpecs[j] }

// VMIndex resolves a VM ID — static or dynamically admitted — to its
// dense slot index. Retired VMs do not resolve.
func (e *Engine) VMIndex(id model.VMID) (int, bool) {
	i, ok := e.vmByID[id]
	return i, ok
}

// PMIndex resolves a PM ID to its dense index.
func (e *Engine) PMIndex(id model.PMID) (int, bool) { return e.cfg.Inventory.PMIndex(id) }

// HostIndexOf returns the dense PM index hosting VM index i, or -1.
func (e *Engine) HostIndexOf(i int) int { return int(e.hostOf[i]) }

// PerDCWatts returns this tick's facility draw per DC index. The slice is
// reused across ticks; copy it to retain.
func (e *Engine) PerDCWatts() []float64 { return e.perDCWatts }

// PerDCActive returns this tick's active host count per DC index. The
// slice is reused across ticks; copy it to retain.
func (e *Engine) PerDCActive() []int { return e.perDCActive }

// rtRow returns the per-source response-time row of VM index i.
func (e *Engine) rtRow(i int) []float64 { return e.rtBySrc[i*e.nLoc : (i+1)*e.nLoc] }

// VMTruthByIndex assembles the hidden state of VM index i from the last
// Step. Load and RTBySource alias the Engine's reusable buffers: valid
// until the next Step, not to be mutated.
func (e *Engine) VMTruthByIndex(i int) (VMTruth, bool) {
	if !e.stepped || i < 0 || i >= e.nVM || !e.activeVM[i] {
		return VMTruth{}, false
	}
	host := model.NoPM
	if j := e.hostOf[i]; j >= 0 {
		host = e.pmSpecs[j].ID
	}
	return VMTruth{
		Load:       e.loadRows[i],
		Total:      e.totals[i],
		Required:   e.required[i],
		Granted:    e.granted[i],
		Used:       e.used[i],
		RTProcess:  e.rtProcess[i],
		RTBySource: e.rtRow(i),
		SLA:        e.slaLvl[i],
		QueueLen:   e.queueLen[i],
		Migrating:  e.migrating[i],
		Host:       host,
	}, true
}

// PMTruthByIndex assembles the hidden state of PM index j from the last
// Step.
func (e *Engine) PMTruthByIndex(j int) (PMTruth, bool) {
	if !e.stepped || j < 0 || j >= e.nPM {
		return PMTruth{}, false
	}
	return PMTruth{
		Usage:         e.pmUsage[j],
		On:            e.pmOn[j],
		ITWatts:       e.pmITWatts[j],
		FacilityWatts: e.pmFacWatts[j],
		Guests:        e.pmGuestN[j],
	}, true
}

// VMTruthAt returns the hidden state of a VM from the last Step.
func (e *Engine) VMTruthAt(vm model.VMID) (VMTruth, bool) {
	i, ok := e.VMIndex(vm)
	if !ok {
		return VMTruth{}, false
	}
	return e.VMTruthByIndex(i)
}

// PMTruthAt returns the hidden state of a PM from the last Step.
func (e *Engine) PMTruthAt(pm model.PMID) (PMTruth, bool) {
	j, ok := e.PMIndex(pm)
	if !ok {
		return PMTruth{}, false
	}
	return e.PMTruthByIndex(j)
}

// --- placement --------------------------------------------------------------

// syncPlacement rebuilds the dense placement mirrors from cluster.State.
// Guest lists are kept sorted by VMID, matching State.GuestsOf order. The
// per-PM backing arrays are reused, so repeated syncs settle to zero
// allocations; syncs only happen at placement changes, never per tick.
func (e *Engine) syncPlacement() {
	for j := range e.guests {
		e.guests[j] = e.guests[j][:0]
	}
	for i := 0; i < e.nVM; i++ {
		if !e.activeVM[i] {
			e.hostOf[i] = -1
			continue
		}
		pm := e.state.HostOf(e.vmIDs[i])
		if pm == model.NoPM {
			e.hostOf[i] = -1
			continue
		}
		j, ok := e.PMIndex(pm)
		if !ok {
			e.hostOf[i] = -1
			continue
		}
		e.hostOf[i] = int32(j)
		e.guests[j] = append(e.guests[j], int32(i))
	}
	for j := range e.guests {
		gs := e.guests[j]
		sort.Slice(gs, func(a, b int) bool {
			return e.vmSpecs[gs[a]].ID < e.vmSpecs[gs[b]].ID
		})
	}
}

// PlaceInitial installs a placement with no migration cost, valid only at
// tick zero (before any Step).
func (e *Engine) PlaceInitial(p model.Placement) error {
	if e.tick != 0 {
		return fmt.Errorf("sim: PlaceInitial after tick %d", e.tick)
	}
	_, err := e.state.Apply(p)
	e.syncPlacement() // state may have partially changed even on error
	return err
}

// ApplySchedule installs a new placement, starting a migration (with its
// SLA blackout) for every VM whose host changes.
func (e *Engine) ApplySchedule(p model.Placement) error {
	if err := e.validatePlacementTargets(p); err != nil {
		return err
	}
	old := e.state.Placement()
	moved, err := e.state.Apply(p)
	if err != nil {
		e.syncPlacement() // state may have partially changed
		return err
	}
	// Apply reports movers in placement-map iteration order; sort so the
	// penalty accumulation below is deterministic to the last bit.
	sort.Slice(moved, func(a, b int) bool { return moved[a] < moved[b] })
	for _, vm := range moved {
		i, ok := e.VMIndex(vm)
		if !ok {
			continue
		}
		spec := e.vmSpecs[i]
		oldPM, hadOld := old[vm]
		newPM := p[vm]
		if !hadOld || oldPM == model.NoPM || newPM == model.NoPM {
			continue // initial placement or eviction: no image transfer
		}
		fromDC := e.cfg.Inventory.DCOf(oldPM)
		toDC := e.cfg.Inventory.DCOf(newPM)
		d := e.cfg.Topology.MigrationDuration(spec.ImageSizeGB, fromDC, toDC)
		e.downtime[i] += d
		e.migrated++
		// The explicit fpenalty charge: full price for the downtime.
		e.ledger.AddPenalty(sla.MigrationPenalty(spec.PriceEURh, d/3600))
	}
	e.syncPlacement()
	return nil
}

// --- failure injection ------------------------------------------------------

// FailPM marks a host as failed, evicting its guests. Evicted VMs stay
// unplaced (and earn nothing) until a scheduler reassigns them.
func (e *Engine) FailPM(pm model.PMID) error {
	j, ok := e.PMIndex(pm)
	if !ok {
		return fmt.Errorf("sim: unknown PM %v", pm)
	}
	if e.failed[j] {
		return nil
	}
	e.failed[j] = true
	e.nFailed++
	if e.draining[j] {
		// A crash supersedes an in-progress drain.
		e.draining[j] = false
		e.nDraining--
	}
	for _, vi := range e.guests[j] {
		if err := e.state.Place(e.vmIDs[vi], model.NoPM); err != nil {
			return err
		}
		// In-flight migrations to a dead target are moot; the blackout
		// continues implicitly because the VM is unplaced.
		e.downtime[vi] = 0
	}
	e.syncPlacement()
	return nil
}

// RecoverPM returns a failed or draining host to full service (a failed
// host comes back empty; the next round may use it again).
func (e *Engine) RecoverPM(pm model.PMID) error {
	j, ok := e.PMIndex(pm)
	if !ok {
		return fmt.Errorf("sim: unknown PM %v", pm)
	}
	if e.failed[j] {
		e.failed[j] = false
		e.nFailed--
	}
	if e.draining[j] {
		e.draining[j] = false
		e.nDraining--
	}
	return nil
}

// DrainPM puts a host into drain: its guests keep serving, but new
// placements onto it are rejected until the drain is lifted (RecoverPM)
// or the host is taken down (FailPM). Draining a failed host is a no-op —
// crash and drain are distinct events and crash wins.
func (e *Engine) DrainPM(pm model.PMID) error {
	j, ok := e.PMIndex(pm)
	if !ok {
		return fmt.Errorf("sim: unknown PM %v", pm)
	}
	if e.failed[j] || e.draining[j] {
		return nil
	}
	e.draining[j] = true
	e.nDraining++
	return nil
}

// IsDraining reports whether a host is currently draining.
func (e *Engine) IsDraining(pm model.PMID) bool {
	j, ok := e.PMIndex(pm)
	return ok && e.draining[j]
}

// IsDrainingIndex reports whether the host at dense index j is draining.
func (e *Engine) IsDrainingIndex(j int) bool { return e.draining[j] }

// DrainingPMs returns the currently draining hosts in inventory order.
func (e *Engine) DrainingPMs() []model.PMID {
	var out []model.PMID
	for j := range e.pmSpecs {
		if e.draining[j] {
			out = append(out, e.pmSpecs[j].ID)
		}
	}
	return out
}

// NumFailedPMs is the count of currently failed hosts.
func (e *Engine) NumFailedPMs() int { return e.nFailed }

// NumDrainingPMs is the count of currently draining hosts.
func (e *Engine) NumDrainingPMs() int { return e.nDraining }

// IsFailed reports whether a host is currently failed.
func (e *Engine) IsFailed(pm model.PMID) bool {
	j, ok := e.PMIndex(pm)
	return ok && e.failed[j]
}

// IsFailedIndex reports whether the host at dense index j is failed.
func (e *Engine) IsFailedIndex(j int) bool { return e.failed[j] }

// FailedPMs returns the currently failed hosts in inventory order.
func (e *Engine) FailedPMs() []model.PMID {
	var out []model.PMID
	for j := range e.pmSpecs {
		if e.failed[j] {
			out = append(out, e.pmSpecs[j].ID)
		}
	}
	return out
}

// validatePlacementTargets rejects schedules that place VMs on failed
// hosts, or move new VMs onto draining hosts (guests already there may
// stay while the drain completes); the manager should never offer either,
// so this is a programming-error guard rather than a recoverable state.
func (e *Engine) validatePlacementTargets(p model.Placement) error {
	for vm, pm := range p {
		if pm == model.NoPM {
			continue
		}
		j, ok := e.PMIndex(pm)
		if !ok {
			continue
		}
		if e.failed[j] {
			return fmt.Errorf("sim: placement puts %v on failed host %v", vm, pm)
		}
		if e.draining[j] {
			i, live := e.vmByID[vm]
			if !live || !e.activeVM[i] || e.hostOf[i] != int32(j) {
				return fmt.Errorf("sim: placement puts %v on draining host %v", vm, pm)
			}
		}
	}
	return nil
}

// --- the tick ---------------------------------------------------------------

// RequiredResources computes the true requirement of a VM under the given
// aggregate load — fRequiredResources (constraint 5.1).
func (e *Engine) RequiredResources(spec model.VMSpec, total model.Load) model.Resources {
	p := e.cfg.Params
	cpu := p.VMBaseCPUPct + queueing.CPURequiredPct(queueing.Demand{
		RPS: total.RPS, CPUTimeReq: total.CPUTimeReq * p.cpuCostFactor(),
	}, p.TargetRho)
	mem := spec.BaseMemMB + p.MemPerRPS*total.RPS
	if spec.MaxMemMB > 0 && mem > spec.MaxMemMB {
		mem = spec.MaxMemMB
	}
	bw := queueing.BandwidthNeedMbps(total.RPS, total.BytesInReq, total.BytesOutRq)
	return model.Resources{CPUPct: cpu, MemMB: mem, BWMbps: bw}
}

// Step advances the engine by one tick: fills the workload into the dense
// rows, resolves resource occupation on every PM, computes response times,
// SLA, power and money, feeds the monitoring pipeline and returns the tick
// summary. Step performs no per-tick map or slice allocations.
func (e *Engine) Step() TickSummary {
	var t0 time.Time
	if e.met != nil {
		t0 = time.Now()
	}
	p := e.cfg.Params
	sum := TickSummary{Tick: e.tick, MinSLA: 1}
	for dc := range e.perDCWatts {
		e.perDCWatts[dc] = 0
		e.perDCActive[dc] = 0
	}

	// Workload only for live slots: fillIDs/fillRows is the compacted
	// active view (the rows alias loadRows, so data lands slot-indexed).
	e.cfg.Generator.Fill(e.tick, e.fillIDs, e.fillRows)
	for i := 0; i < e.nVM; i++ {
		if !e.activeVM[i] {
			continue
		}
		e.totals[i] = e.loadRows[i].Total()
	}

	// RT-noise pre-pass, serial: the single "sim/rt" stream is consumed in
	// the legacy order (PMs in inventory order, guests in VMID order) so
	// the parallel resolution phase below never touches the RNG and stays
	// byte-identical to the serial tick at any worker count.
	if p.RTNoiseSD > 0 {
		for j := 0; j < e.nPM; j++ {
			for _, vi := range e.guests[j] {
				e.rtNoise[vi] = e.rt.LogNormal(-p.RTNoiseSD*p.RTNoiseSD/2, p.RTNoiseSD)
			}
		}
	}

	// Per-PM resolution. Every write is indexed by the PM or by one of its
	// guests (each VM has exactly one host), there are no accumulators and
	// no RNG draws, so the DC shards are independent: with TickWorkers > 1
	// they run on parallel workers, otherwise inline (the zero-alloc path).
	if e.workers > 1 {
		par.ForEachWorker(len(e.pmByDC), e.workers, e.shardFn)
	} else {
		for j := 0; j < e.nPM; j++ {
			e.resolvePM(j)
		}
	}

	// Accumulation, serial, in inventory order: per-DC splits, money and
	// monitoring consume the resolved per-PM state in the same order as the
	// legacy interleaved loop, so floating-point sums, ledger entries and
	// "sim/monitor" stream draws are unchanged to the last bit.
	for j := 0; j < e.nPM; j++ {
		if !e.pmOn[j] {
			continue
		}
		dc := e.pmSpecs[j].DC
		e.perDCWatts[dc] += e.pmFacWatts[j]
		e.perDCActive[dc]++
		sum.FacilityWatts += e.pmFacWatts[j]
		sum.ActivePMs++
		priceKWh := e.cfg.Topology.EnergyPriceAt(dc, e.tick)
		e.ledger.AddEnergy(power.EnergyEUR(e.pmFacWatts[j], TickHours, priceKWh))
		e.energy.Observe(e.pmFacWatts[j], priceKWh, TickHours)
		e.obs.ObservePM(e.tick, e.pmSpecs[j].ID, e.pmUsage[j])
	}

	sum.FailedPMs = e.nFailed
	sum.DrainingPMs = e.nDraining

	// Unhosted VMs: no service at all.
	for i := 0; i < e.nVM; i++ {
		if !e.activeVM[i] || e.hostOf[i] >= 0 {
			continue
		}
		sum.UnplacedVMs++
		e.required[i] = model.Resources{}
		e.granted[i] = model.Resources{}
		e.used[i] = model.Resources{}
		e.migrating[i] = false
		e.rtProcess[i] = queueing.MaxRT
		row := e.rtRow(i)
		for k := range row {
			row[k] = queueing.MaxRT
		}
		if e.totals[i].RPS <= 0 {
			e.slaLvl[i] = 1
		} else {
			e.slaLvl[i] = 0
		}
		e.queueLen[i] = 0
	}

	// Money and monitoring per VM, in stable inventory order so floating-
	// point accumulation is deterministic run to run.
	var slaWeighted, rpsTotal float64
	for i := 0; i < e.nVM; i++ {
		if !e.activeVM[i] {
			continue
		}
		spec := &e.vmSpecs[i]
		lvl := e.slaLvl[i]
		rev := sla.Revenue(spec.PriceEURh, lvl, TickHours)
		e.ledger.AddRevenue(rev)
		sum.RevenueEUR += rev
		w := math.Max(e.totals[i].RPS, 1e-9)
		slaWeighted += lvl * w
		rpsTotal += w
		sum.TotalRPS += e.totals[i].RPS
		if lvl < sum.MinSLA {
			sum.MinSLA = lvl
		}
		e.obs.ObserveVM(e.tick, spec.ID, e.used[i], e.totals[i], e.rtProcess[i], lvl, e.queueLen[i])
	}

	if rpsTotal > 0 {
		sum.AvgSLA = slaWeighted / rpsTotal
	} else {
		sum.AvgSLA = 1
	}
	sum.Migrations = e.migrated - e.migratedAtLastStep
	e.migratedAtLastStep = e.migrated
	e.ledger.Tick()
	e.energy.Tick()
	sum.EnergyEUR = e.ledger.EnergyCost()
	sum.PenaltyEUR = e.ledger.Penalties()
	sum.ProfitEUR = e.ledger.Profit()
	e.tick++
	e.stepped = true
	if e.met != nil {
		e.met.recordTick(&sum, e.nActive, time.Since(t0).Seconds())
	}
	return sum
}

// resolvePM resolves resource occupation, queueing, SLA and power for one
// PM and its guests. It writes only PM-indexed and guest-indexed state and
// draws no randomness (RT noise is pre-drawn into rtNoise), so distinct
// PMs may resolve concurrently.
func (e *Engine) resolvePM(j int) {
	p := e.cfg.Params
	gs := e.guests[j]
	e.pmGuestN[j] = len(gs)
	if len(gs) == 0 {
		e.pmOn[j] = false
		e.pmUsage[j] = model.Resources{}
		e.pmITWatts[j] = 0
		e.pmFacWatts[j] = 0
		return
	}
	e.pmOn[j] = true
	pmSpec := &e.pmSpecs[j]

	// Requirements of every guest under its current load, then the
	// proportional-sharing grant — fOccupation (constraint 5.2).
	var reqSum model.Resources
	for _, vi := range gs {
		e.required[vi] = e.RequiredResources(e.vmSpecs[vi], e.totals[vi])
		reqSum = reqSum.Add(e.required[vi])
	}
	shCPU, shMem, shBW := cluster.ShareFactors(pmSpec.Capacity, reqSum)
	var sumUsedCPU, sumMem, sumBW float64
	for _, vi := range gs {
		r := e.required[vi]
		e.granted[vi] = model.Resources{
			CPUPct: r.CPUPct * shCPU,
			MemMB:  r.MemMB * shMem,
			BWMbps: r.BWMbps * shBW,
		}
		e.resolveVM(int(vi), pmSpec)
		sumUsedCPU += e.used[vi].CPUPct
		sumMem += e.used[vi].MemMB
		sumBW += e.used[vi].BWMbps
	}
	// PM aggregate: guests plus hypervisor overhead (the reason the
	// paper learns PM CPU separately from the VM sum).
	pmCPU := sumUsedCPU + p.VirtBasePct + p.VirtPerVMPct*float64(len(gs)) + p.VirtFrac*sumUsedCPU
	if pmCPU > pmSpec.Capacity.CPUPct {
		pmCPU = pmSpec.Capacity.CPUPct
	}
	e.pmUsage[j] = model.Resources{CPUPct: pmCPU, MemMB: sumMem, BWMbps: sumBW}
	e.pmITWatts[j] = e.cfg.Power.Watts(pmCPU)
	e.pmFacWatts[j] = power.FacilityWatts(e.cfg.Power, pmCPU)
}

// resolveVM computes the hidden behaviour of one hosted VM for this tick.
func (e *Engine) resolveVM(i int, pmSpec *model.PMSpec) {
	total := e.totals[i]
	p := e.cfg.Params
	spec := &e.vmSpecs[i]

	// Migration blackout: consume remaining downtime against this tick.
	downFrac := 0.0
	e.migrating[i] = false
	if d := e.downtime[i]; d > 0 {
		use := math.Min(d, TickSeconds)
		rest := d - use
		if rest <= 1e-9 {
			rest = 0
		}
		e.downtime[i] = rest
		downFrac = use / TickSeconds
		e.migrating[i] = true
	}

	demand := queueing.Demand{
		RPS:        total.RPS,
		CPUTimeReq: total.CPUTimeReq * p.cpuCostFactor(),
		BytesInReq: total.BytesInReq,
		BytesOutRq: total.BytesOutRq,
	}
	grant := queueing.Grant{
		CPUPct:   math.Max(e.granted[i].CPUPct-p.VMBaseCPUPct, 1),
		MemMB:    e.granted[i].MemMB,
		MemReqMB: e.required[i].MemMB,
		BWMbps:   e.granted[i].BWMbps,
		BWReqMbp: e.required[i].BWMbps,
	}
	rt := queueing.ResponseTime(demand, grant)
	// A pending-request backlog at the gateway delays every new arrival by
	// the time needed to serve the queue ahead of it — the reason queue
	// length is a predictive feature in the paper.
	mu := queueing.ServiceCapacityRPS(grant.CPUPct, total.CPUTimeReq*p.cpuCostFactor())
	backlogBefore := e.backlog[i]
	if backlogBefore > 0 && !math.IsInf(mu, 1) && mu > 0 {
		wait := backlogBefore / mu
		if wait > p.MaxWaitRT {
			wait = p.MaxWaitRT
		}
		rt += wait
	}
	if p.RTNoiseSD > 0 {
		rt *= e.rtNoise[i] // pre-drawn in Step's serial noise pass
	}
	if rt > queueing.MaxRT {
		rt = queueing.MaxRT
	}
	e.rtProcess[i] = rt

	// Backlog dynamics: grows by the arrival surplus, drains by the
	// service surplus plus an expiry fraction (impatient clients). An
	// infinite mu means no CPU-costing arrivals this tick (a zero-arrival
	// tick, e.g. right after a churn boundary): the idle gateway clears
	// the whole queue instead of lingering on decay alone.
	backlog := backlogBefore
	if math.IsInf(mu, 1) {
		backlog = 0
	} else {
		backlog += (total.RPS - mu) * TickSeconds
	}
	backlog *= (1 - p.QueueDecay)
	if backlog < 1 {
		backlog = 0
	}
	if backlog > 1e6 {
		backlog = 1e6
	}
	e.backlog[i] = backlog
	e.queueLen[i] = backlog

	// Transport RT per source and the weighted SLA.
	hostDC := pmSpec.DC
	row := e.rtRow(i)
	for loc := range row {
		row[loc] = rt + e.cfg.Topology.LatencyClientDC(model.LocationID(loc), hostDC)
	}
	lvl := sla.WeightedFulfilment(spec.Terms, row, e.loadRows[i])
	// The migration blackout removes the migrating fraction of the tick.
	e.slaLvl[i] = lvl * (1 - downFrac)

	// True resource use: a VM cannot use more than granted, and uses less
	// when the load does not need the full grant.
	wantCPU := p.VMBaseCPUPct + total.RPS*total.CPUTimeReq*p.cpuCostFactor()*100
	e.used[i] = model.Resources{
		CPUPct: math.Min(wantCPU, e.granted[i].CPUPct),
		MemMB:  math.Min(e.required[i].MemMB, e.granted[i].MemMB),
		BWMbps: math.Min(e.required[i].BWMbps, e.granted[i].BWMbps),
	}
}
