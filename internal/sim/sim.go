// Package sim is the world model: it turns (placement, workload, time) into
// ground-truth resource usage, response times, SLA levels, power draw and
// money. It substitutes for the paper's physical testbed (Atom 4-core hosts
// under VirtualBox/OpenNebula driven by the Li-BCN workload) while keeping
// the behavioural shape the decision problem depends on:
//
//   - VM CPU need grows with request rate and saturates at the grant;
//   - VM memory is linear in load (the paper's MEM model is linear, r=0.994);
//   - PM CPU exceeds the sum of guest CPU (virtualisation overhead), which
//     is why the paper learns a dedicated PM CPU model;
//   - response time follows a processor-sharing queue with memory- and
//     bandwidth-pressure penalties;
//   - migrating VMs answer nothing (SLA 0) for the migration duration;
//   - empty machines are powered off, active ones follow the Atom curve.
//
// The computation lives in Engine, a flat, index-based core whose tick hot
// path is allocation-free (see engine.go). World wraps an Engine with the
// historical map-shaped API (TickStats with per-DC maps and a placement
// snapshot) so existing callers keep working.
package sim

import (
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/power"
)

// Params are the ground-truth behavioural constants of the simulated fleet.
type Params struct {
	// TargetRho is the utilisation at which a VM's CPU requirement is sized
	// (the requirement constraint 5.1 of Figure 3).
	TargetRho float64
	// MemPerRPS is the linear memory slope in MB per request/second.
	MemPerRPS float64
	// VMBaseCPUPct is the per-VM idle CPU floor in percent of one core.
	VMBaseCPUPct float64
	// VirtBasePct, VirtPerVMPct and VirtFrac shape the PM CPU overhead:
	// pmCPU = sum(vmCPU) + VirtBasePct + VirtPerVMPct*nGuests + VirtFrac*sum(vmCPU).
	VirtBasePct  float64
	VirtPerVMPct float64
	VirtFrac     float64
	// RTNoiseSD is multiplicative noise on the true response time.
	RTNoiseSD float64
	// QueueDecay is the fraction of gateway backlog that drains per tick
	// on top of the capacity surplus (lost/expired requests).
	QueueDecay float64
	// MaxWaitRT caps the backlog-induced waiting time added to the
	// processing RT (seconds).
	MaxWaitRT float64
	// CPUCostFactor multiplies the true CPU cost of every request without
	// changing the gateway-visible request characteristics — a software
	// update making the same requests more expensive. Zero means 1.
	CPUCostFactor float64
}

// cpuCostFactor returns the effective request-cost multiplier.
func (p Params) cpuCostFactor() float64 {
	if p.CPUCostFactor <= 0 {
		return 1
	}
	return p.CPUCostFactor
}

// DefaultParams returns the constants used across the reproduction.
func DefaultParams() Params {
	return Params{
		TargetRho:     0.7,
		MemPerRPS:     3.0,
		VMBaseCPUPct:  3,
		VirtBasePct:   10,
		VirtPerVMPct:  4,
		VirtFrac:      0.06,
		RTNoiseSD:     0.06,
		QueueDecay:    0.1,
		MaxWaitRT:     15,
		CPUCostFactor: 1,
	}
}

// Workload supplies the per-tick load vectors of every VM. The synthetic
// generator (trace.Generator) and the CSV replayer (trace.Replay) both
// implement it.
//
// Fill writes the load vector of vms[i] into dst[i] for every i. Each
// dst[i] is a caller-owned row with one slot per client location that the
// implementation must fully overwrite (zeroing slots it has no data for),
// never grow or retain — the engine reuses the rows across ticks, which is
// what keeps the tick hot path allocation-free. Results must be
// deterministic in tick.
type Workload interface {
	Fill(tick int, vms []model.VMID, dst []model.LoadVector)
}

// Config assembles a world.
type Config struct {
	Inventory *cluster.Inventory
	Topology  *network.Topology
	Generator Workload
	Power     power.Model
	Params    Params
	Noise     monitor.NoiseConfig
	Seed      uint64
	// ExtraVMSlots reserves capacity for dynamically admitted VMs beyond
	// the static inventory population (the workload-lifecycle subsystem's
	// AdmitVM/RetireVM). Every per-VM engine buffer is sized once to
	// inventory + extra, so churn never reallocates the truth slices. Zero
	// keeps the engine fixed-population, bit-identical to its pre-churn
	// behaviour.
	ExtraVMSlots int
	// TickWorkers sets the worker count for the tick's per-DC parallel
	// resolution phase (Engine.Step). Results are byte-identical at any
	// worker count; <= 1 (the default) runs serially, which is also the
	// allocation-free path — parallel ticks pay goroutine spawns.
	TickWorkers int
}

// VMTruth is the hidden per-VM state of one tick.
type VMTruth struct {
	Load       model.LoadVector
	Total      model.Load
	Required   model.Resources
	Granted    model.Resources
	Used       model.Resources
	RTProcess  float64
	RTBySource []float64
	SLA        float64
	QueueLen   float64
	Migrating  bool
	Host       model.PMID
}

// PMTruth is the hidden per-PM state of one tick.
type PMTruth struct {
	Usage         model.Resources // aggregate incl. virtualisation overhead
	On            bool
	ITWatts       float64
	FacilityWatts float64
	Guests        int
}

// TickStats summarises one tick for experiment reporting.
type TickStats struct {
	Tick          int
	AvgSLA        float64 // request-weighted over VMs
	MinSLA        float64
	FacilityWatts float64
	ActivePMs     int
	Migrations    int // migrations started this tick
	RevenueEUR    float64
	EnergyEUR     float64
	PenaltyEUR    float64
	ProfitEUR     float64
	TotalRPS      float64
	// Availability surface for the fault layer (PR 7): active VMs without
	// a host this tick and the current failed/draining host counts.
	UnplacedVMs int
	FailedPMs   int
	DrainingPMs int
	PerDCWatts  map[model.DCID]float64
	Placement   model.Placement
}

// TickSeconds is the tick length in seconds.
const TickSeconds = 60.0

// TickHours is the tick length in hours.
const TickHours = TickSeconds / 3600

// World is the running simulation: a thin adapter that keeps the
// historical map-shaped API on top of the index-based Engine. All state
// lives in the embedded Engine; World only reshapes Step's output. It is
// not safe for concurrent use.
type World struct {
	*Engine
}

// NewWorld validates the configuration and builds a fresh world at tick 0
// with every VM unplaced.
func NewWorld(cfg Config) (*World, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &World{Engine: e}, nil
}

// Step advances the world by one tick and reshapes the Engine's summary
// into the map-carrying TickStats. The numbers are bit-identical to the
// Engine path: Step adds no computation, only the map views.
func (w *World) Step() TickStats {
	s := w.Engine.Step()
	st := TickStats{
		Tick:          s.Tick,
		AvgSLA:        s.AvgSLA,
		MinSLA:        s.MinSLA,
		FacilityWatts: s.FacilityWatts,
		ActivePMs:     s.ActivePMs,
		Migrations:    s.Migrations,
		RevenueEUR:    s.RevenueEUR,
		EnergyEUR:     s.EnergyEUR,
		PenaltyEUR:    s.PenaltyEUR,
		ProfitEUR:     s.ProfitEUR,
		TotalRPS:      s.TotalRPS,
		UnplacedVMs:   s.UnplacedVMs,
		FailedPMs:     s.FailedPMs,
		DrainingPMs:   s.DrainingPMs,
		PerDCWatts:    make(map[model.DCID]float64),
		Placement:     w.State().Placement(),
	}
	watts := w.PerDCWatts()
	for dc, active := range w.PerDCActive() {
		if active > 0 {
			st.PerDCWatts[model.DCID(dc)] = watts[dc]
		}
	}
	return st
}

// Run advances n ticks, invoking cb (if non-nil) after each.
func (w *World) Run(n int, cb func(TickStats)) {
	for i := 0; i < n; i++ {
		st := w.Step()
		if cb != nil {
			cb(st)
		}
	}
}
