// Package sim is the world model: it turns (placement, workload, time) into
// ground-truth resource usage, response times, SLA levels, power draw and
// money. It substitutes for the paper's physical testbed (Atom 4-core hosts
// under VirtualBox/OpenNebula driven by the Li-BCN workload) while keeping
// the behavioural shape the decision problem depends on:
//
//   - VM CPU need grows with request rate and saturates at the grant;
//   - VM memory is linear in load (the paper's MEM model is linear, r=0.994);
//   - PM CPU exceeds the sum of guest CPU (virtualisation overhead), which
//     is why the paper learns a dedicated PM CPU model;
//   - response time follows a processor-sharing queue with memory- and
//     bandwidth-pressure penalties;
//   - migrating VMs answer nothing (SLA 0) for the migration duration;
//   - empty machines are powered off, active ones follow the Atom curve.
package sim

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/sla"
)

// Params are the ground-truth behavioural constants of the simulated fleet.
type Params struct {
	// TargetRho is the utilisation at which a VM's CPU requirement is sized
	// (the requirement constraint 5.1 of Figure 3).
	TargetRho float64
	// MemPerRPS is the linear memory slope in MB per request/second.
	MemPerRPS float64
	// VMBaseCPUPct is the per-VM idle CPU floor in percent of one core.
	VMBaseCPUPct float64
	// VirtBasePct, VirtPerVMPct and VirtFrac shape the PM CPU overhead:
	// pmCPU = sum(vmCPU) + VirtBasePct + VirtPerVMPct*nGuests + VirtFrac*sum(vmCPU).
	VirtBasePct  float64
	VirtPerVMPct float64
	VirtFrac     float64
	// RTNoiseSD is multiplicative noise on the true response time.
	RTNoiseSD float64
	// QueueDecay is the fraction of gateway backlog that drains per tick
	// on top of the capacity surplus (lost/expired requests).
	QueueDecay float64
	// MaxWaitRT caps the backlog-induced waiting time added to the
	// processing RT (seconds).
	MaxWaitRT float64
	// CPUCostFactor multiplies the true CPU cost of every request without
	// changing the gateway-visible request characteristics — a software
	// update making the same requests more expensive. Zero means 1.
	CPUCostFactor float64
}

// cpuCostFactor returns the effective request-cost multiplier.
func (p Params) cpuCostFactor() float64 {
	if p.CPUCostFactor <= 0 {
		return 1
	}
	return p.CPUCostFactor
}

// DefaultParams returns the constants used across the reproduction.
func DefaultParams() Params {
	return Params{
		TargetRho:     0.7,
		MemPerRPS:     3.0,
		VMBaseCPUPct:  3,
		VirtBasePct:   10,
		VirtPerVMPct:  4,
		VirtFrac:      0.06,
		RTNoiseSD:     0.06,
		QueueDecay:    0.1,
		MaxWaitRT:     15,
		CPUCostFactor: 1,
	}
}

// Workload supplies the per-tick load vectors of every VM. The synthetic
// generator (trace.Generator) and the CSV replayer (trace.Replay) both
// implement it; results must be deterministic in tick.
type Workload interface {
	Loads(tick int) map[model.VMID]model.LoadVector
}

// Config assembles a world.
type Config struct {
	Inventory *cluster.Inventory
	Topology  *network.Topology
	Generator Workload
	Power     power.Model
	Params    Params
	Noise     monitor.NoiseConfig
	Seed      uint64
}

// VMTruth is the hidden per-VM state of one tick.
type VMTruth struct {
	Load       model.LoadVector
	Total      model.Load
	Required   model.Resources
	Granted    model.Resources
	Used       model.Resources
	RTProcess  float64
	RTBySource []float64
	SLA        float64
	QueueLen   float64
	Migrating  bool
	Host       model.PMID
}

// PMTruth is the hidden per-PM state of one tick.
type PMTruth struct {
	Usage         model.Resources // aggregate incl. virtualisation overhead
	On            bool
	ITWatts       float64
	FacilityWatts float64
	Guests        int
}

// TickStats summarises one tick for experiment reporting.
type TickStats struct {
	Tick          int
	AvgSLA        float64 // request-weighted over VMs
	MinSLA        float64
	FacilityWatts float64
	ActivePMs     int
	Migrations    int // migrations started this tick
	RevenueEUR    float64
	EnergyEUR     float64
	PenaltyEUR    float64
	ProfitEUR     float64
	TotalRPS      float64
	PerDCWatts    map[model.DCID]float64
	Placement     model.Placement
}

// vmOutcome pairs a VM's spec with the truth being computed for the tick.
type vmOutcome struct {
	truth VMTruth
	spec  model.VMSpec
}

// World is the running simulation. It is not safe for concurrent use.
type World struct {
	cfg      Config
	state    *cluster.State
	obs      *monitor.Observer
	rt       *rng.Stream
	tick     int
	ledger   sla.Ledger
	energy   power.Accountant
	queues   map[model.VMID]float64
	downtime map[model.VMID]float64 // remaining migration downtime, seconds
	vmTruth  map[model.VMID]VMTruth
	pmTruth  map[model.PMID]PMTruth
	failed   map[model.PMID]bool
	migrated int // total migrations started
	// migratedAtLastStep snapshots migrated at the end of each Step so the
	// next Step can attribute newly started migrations to itself even when
	// ApplySchedule ran between the two steps.
	migratedAtLastStep int
}

// TickSeconds is the tick length in seconds.
const TickSeconds = 60.0

// TickHours is the tick length in hours.
const TickHours = TickSeconds / 3600

// NewWorld validates the configuration and builds a fresh world at tick 0
// with every VM unplaced.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Inventory == nil || cfg.Topology == nil || cfg.Generator == nil {
		return nil, fmt.Errorf("sim: inventory, topology and generator are required")
	}
	if cfg.Power == nil {
		cfg.Power = power.Atom{}
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	if cfg.Noise == (monitor.NoiseConfig{}) {
		// The paper's monitors are noisy by nature (Section IV-B); a zero
		// config means "default distortions", not a perfect oracle.
		cfg.Noise = monitor.DefaultNoise
	}
	if cfg.Inventory.NumDCs() > cfg.Topology.NumDCs() {
		return nil, fmt.Errorf("sim: inventory spans %d DCs but topology has %d",
			cfg.Inventory.NumDCs(), cfg.Topology.NumDCs())
	}
	w := &World{
		cfg:      cfg,
		state:    cluster.NewState(cfg.Inventory),
		obs:      monitor.NewObserver(cfg.Noise, 10, rng.NewNamed(cfg.Seed, "sim/monitor")),
		rt:       rng.NewNamed(cfg.Seed, "sim/rt"),
		queues:   make(map[model.VMID]float64),
		downtime: make(map[model.VMID]float64),
		vmTruth:  make(map[model.VMID]VMTruth),
		pmTruth:  make(map[model.PMID]PMTruth),
	}
	return w, nil
}

// State exposes the placement state (for schedulers via the manager).
func (w *World) State() *cluster.State { return w.state }

// Observer exposes the monitored view of the world.
func (w *World) Observer() *monitor.Observer { return w.obs }

// Topology exposes the network substrate.
func (w *World) Topology() *network.Topology { return w.cfg.Topology }

// Inventory exposes the fleet description.
func (w *World) Inventory() *cluster.Inventory { return w.cfg.Inventory }

// Params exposes the ground-truth constants.
func (w *World) Params() Params { return w.cfg.Params }

// SetParams swaps the ground-truth behavioural constants mid-run — the
// injection point for "hardware or middleware changes" (Section IV-B):
// a kernel update altering the memory footprint, a hypervisor upgrade
// changing its overhead. Learned models trained before the change are
// silently wrong after it; the online-learning extension detects and
// repairs this.
func (w *World) SetParams(p Params) { w.cfg.Params = p }

// Tick returns the current simulation tick.
func (w *World) Tick() int { return w.tick }

// Ledger returns a copy of the money accounting so far.
func (w *World) Ledger() sla.Ledger { return w.ledger }

// TotalMigrations returns the number of migrations started since t=0.
func (w *World) TotalMigrations() int { return w.migrated }

// VMTruthAt returns the hidden state of a VM from the last Step.
func (w *World) VMTruthAt(vm model.VMID) (VMTruth, bool) {
	t, ok := w.vmTruth[vm]
	return t, ok
}

// PMTruthAt returns the hidden state of a PM from the last Step.
func (w *World) PMTruthAt(pm model.PMID) (PMTruth, bool) {
	t, ok := w.pmTruth[pm]
	return t, ok
}

// PlaceInitial installs a placement with no migration cost, valid only at
// tick zero (before any Step).
func (w *World) PlaceInitial(p model.Placement) error {
	if w.tick != 0 {
		return fmt.Errorf("sim: PlaceInitial after tick %d", w.tick)
	}
	_, err := w.state.Apply(p)
	return err
}

// ApplySchedule installs a new placement, starting a migration (with its
// SLA blackout) for every VM whose host changes.
func (w *World) ApplySchedule(p model.Placement) error {
	if err := w.validatePlacementTargets(p); err != nil {
		return err
	}
	old := w.state.Placement()
	moved, err := w.state.Apply(p)
	if err != nil {
		return err
	}
	for _, vm := range moved {
		spec, ok := w.cfg.Inventory.VM(vm)
		if !ok {
			continue
		}
		oldPM, hadOld := old[vm]
		newPM := p[vm]
		if !hadOld || oldPM == model.NoPM || newPM == model.NoPM {
			continue // initial placement or eviction: no image transfer
		}
		fromDC := w.cfg.Inventory.DCOf(oldPM)
		toDC := w.cfg.Inventory.DCOf(newPM)
		d := w.cfg.Topology.MigrationDuration(spec.ImageSizeGB, fromDC, toDC)
		w.downtime[vm] += d
		w.migrated++
		// The explicit fpenalty charge: full price for the downtime.
		w.ledger.AddPenalty(sla.MigrationPenalty(spec.PriceEURh, d/3600))
	}
	return nil
}

// RequiredResources computes the true requirement of a VM under the given
// aggregate load — fRequiredResources (constraint 5.1).
func (w *World) RequiredResources(spec model.VMSpec, total model.Load) model.Resources {
	p := w.cfg.Params
	cpu := p.VMBaseCPUPct + queueing.CPURequiredPct(queueing.Demand{
		RPS: total.RPS, CPUTimeReq: total.CPUTimeReq * p.cpuCostFactor(),
	}, p.TargetRho)
	mem := spec.BaseMemMB + p.MemPerRPS*total.RPS
	if spec.MaxMemMB > 0 && mem > spec.MaxMemMB {
		mem = spec.MaxMemMB
	}
	bw := queueing.BandwidthNeedMbps(total.RPS, total.BytesInReq, total.BytesOutRq)
	return model.Resources{CPUPct: cpu, MemMB: mem, BWMbps: bw}
}

// Step advances the world by one tick: draws the workload, resolves
// resource occupation on every PM, computes response times, SLA, power and
// money, feeds the monitoring pipeline and returns the tick summary.
func (w *World) Step() TickStats {
	loads := w.cfg.Generator.Loads(w.tick)
	stats := TickStats{
		Tick:       w.tick,
		MinSLA:     1,
		PerDCWatts: make(map[model.DCID]float64),
		Placement:  w.state.Placement(),
	}

	// Per-PM resolution.
	outcomes := make(map[model.VMID]*vmOutcome)
	var slaWeighted, rpsTotal float64

	for _, pmSpec := range w.cfg.Inventory.PMs() {
		guests := w.state.GuestsOf(pmSpec.ID)
		pmt := PMTruth{Guests: len(guests)}
		if len(guests) == 0 {
			w.pmTruth[pmSpec.ID] = pmt
			continue
		}
		pmt.On = true
		// Requirements of every guest under its current load.
		req := make(map[model.VMID]model.Resources, len(guests))
		for _, vm := range guests {
			spec, _ := w.cfg.Inventory.VM(vm)
			lv, ok := loads[vm]
			if !ok {
				lv = make(model.LoadVector, w.cfg.Topology.NumDCs())
			}
			total := lv.Total()
			req[vm] = w.RequiredResources(spec, total)
			outcomes[vm] = &vmOutcome{
				spec: spec,
				truth: VMTruth{
					Load:     lv,
					Total:    total,
					Required: req[vm],
					Host:     pmSpec.ID,
				},
			}
		}
		grants := cluster.Occupation(pmSpec.Capacity, req)
		var sumUsedCPU, sumMem, sumBW float64
		for _, vm := range guests {
			oc := outcomes[vm]
			oc.truth.Granted = grants[vm]
			w.resolveVM(oc, pmSpec)
			sumUsedCPU += oc.truth.Used.CPUPct
			sumMem += oc.truth.Used.MemMB
			sumBW += oc.truth.Used.BWMbps
		}
		// PM aggregate: guests plus hypervisor overhead (the reason the
		// paper learns PM CPU separately from the VM sum).
		p := w.cfg.Params
		pmCPU := sumUsedCPU + p.VirtBasePct + p.VirtPerVMPct*float64(len(guests)) + p.VirtFrac*sumUsedCPU
		if pmCPU > pmSpec.Capacity.CPUPct {
			pmCPU = pmSpec.Capacity.CPUPct
		}
		pmt.Usage = model.Resources{CPUPct: pmCPU, MemMB: sumMem, BWMbps: sumBW}
		pmt.ITWatts = w.cfg.Power.Watts(pmCPU)
		pmt.FacilityWatts = power.FacilityWatts(w.cfg.Power, pmCPU)
		w.pmTruth[pmSpec.ID] = pmt

		dc := pmSpec.DC
		stats.PerDCWatts[dc] += pmt.FacilityWatts
		stats.FacilityWatts += pmt.FacilityWatts
		stats.ActivePMs++
		priceKWh := w.cfg.Topology.EnergyPriceAt(dc, w.tick)
		w.ledger.AddEnergy(power.EnergyEUR(pmt.FacilityWatts, TickHours, priceKWh))
		w.energy.Observe(pmt.FacilityWatts, priceKWh, TickHours)
		w.obs.ObservePM(w.tick, pmSpec.ID, pmt.Usage)
	}

	// Unhosted VMs: no service at all.
	for _, spec := range w.cfg.Inventory.VMs() {
		if _, ok := outcomes[spec.ID]; ok {
			continue
		}
		lv, ok := loads[spec.ID]
		if !ok {
			lv = make(model.LoadVector, w.cfg.Topology.NumDCs())
		}
		total := lv.Total()
		oc := &vmOutcome{spec: spec, truth: VMTruth{
			Load: lv, Total: total, Host: model.NoPM,
			RTProcess: queueing.MaxRT, SLA: 0,
		}}
		if total.RPS <= 0 {
			oc.truth.SLA = 1
		}
		oc.truth.RTBySource = make([]float64, w.cfg.Topology.NumDCs())
		for i := range oc.truth.RTBySource {
			oc.truth.RTBySource[i] = queueing.MaxRT
		}
		outcomes[spec.ID] = oc
	}

	// Money and monitoring per VM, in stable inventory order so floating-
	// point accumulation is deterministic run to run.
	for _, spec := range w.cfg.Inventory.VMs() {
		vmID := spec.ID
		oc := outcomes[vmID]
		t := &oc.truth
		rev := sla.Revenue(oc.spec.PriceEURh, t.SLA, TickHours)
		w.ledger.AddRevenue(rev)
		stats.RevenueEUR += rev
		slaWeighted += t.SLA * math.Max(t.Total.RPS, 1e-9)
		rpsTotal += math.Max(t.Total.RPS, 1e-9)
		stats.TotalRPS += t.Total.RPS
		if t.SLA < stats.MinSLA {
			stats.MinSLA = t.SLA
		}
		w.obs.ObserveVM(w.tick, vmID, t.Used, t.Total, t.RTProcess, t.SLA, t.QueueLen)
		w.vmTruth[vmID] = *t
	}

	if rpsTotal > 0 {
		stats.AvgSLA = slaWeighted / rpsTotal
	} else {
		stats.AvgSLA = 1
	}
	stats.Migrations = w.migrated - w.migratedAtLastStep
	w.migratedAtLastStep = w.migrated
	w.ledger.Tick()
	w.energy.Tick()
	stats.EnergyEUR = w.ledger.EnergyCost()
	stats.PenaltyEUR = w.ledger.Penalties()
	stats.ProfitEUR = w.ledger.Profit()
	w.tick++
	return stats
}

// resolveVM computes the hidden behaviour of one hosted VM for this tick.
func (w *World) resolveVM(oc *vmOutcome, pmSpec model.PMSpec) {
	t := &oc.truth
	total := t.Total
	p := w.cfg.Params

	// Migration blackout: consume remaining downtime against this tick.
	downFrac := 0.0
	if d := w.downtime[oc.spec.ID]; d > 0 {
		use := math.Min(d, TickSeconds)
		w.downtime[oc.spec.ID] = d - use
		if w.downtime[oc.spec.ID] <= 1e-9 {
			delete(w.downtime, oc.spec.ID)
		}
		downFrac = use / TickSeconds
		t.Migrating = true
	}

	demand := queueing.Demand{
		RPS:        total.RPS,
		CPUTimeReq: total.CPUTimeReq * p.cpuCostFactor(),
		BytesInReq: total.BytesInReq,
		BytesOutRq: total.BytesOutRq,
	}
	grant := queueing.Grant{
		CPUPct:   math.Max(t.Granted.CPUPct-p.VMBaseCPUPct, 1),
		MemMB:    t.Granted.MemMB,
		MemReqMB: t.Required.MemMB,
		BWMbps:   t.Granted.BWMbps,
		BWReqMbp: t.Required.BWMbps,
	}
	rt := queueing.ResponseTime(demand, grant)
	// A pending-request backlog at the gateway delays every new arrival by
	// the time needed to serve the queue ahead of it — the reason queue
	// length is a predictive feature in the paper.
	mu := queueing.ServiceCapacityRPS(grant.CPUPct, total.CPUTimeReq*p.cpuCostFactor())
	backlogBefore := w.queues[oc.spec.ID]
	if backlogBefore > 0 && !math.IsInf(mu, 1) && mu > 0 {
		wait := backlogBefore / mu
		if wait > p.MaxWaitRT {
			wait = p.MaxWaitRT
		}
		rt += wait
	}
	if p.RTNoiseSD > 0 {
		rt *= w.rt.LogNormal(-p.RTNoiseSD*p.RTNoiseSD/2, p.RTNoiseSD)
	}
	if rt > queueing.MaxRT {
		rt = queueing.MaxRT
	}
	t.RTProcess = rt

	// Backlog dynamics: grows by the arrival surplus, drains by the
	// service surplus plus an expiry fraction (impatient clients).
	backlog := backlogBefore
	if !math.IsInf(mu, 1) {
		backlog += (total.RPS - mu) * TickSeconds
	}
	backlog *= (1 - p.QueueDecay)
	if backlog < 1 {
		backlog = 0
	}
	if backlog > 1e6 {
		backlog = 1e6
	}
	w.queues[oc.spec.ID] = backlog
	t.QueueLen = backlog

	// Transport RT per source and the weighted SLA.
	hostDC := pmSpec.DC
	nloc := w.cfg.Topology.NumDCs()
	t.RTBySource = make([]float64, nloc)
	for loc := 0; loc < nloc; loc++ {
		t.RTBySource[loc] = rt + w.cfg.Topology.LatencyClientDC(model.LocationID(loc), hostDC)
	}
	lvl := sla.WeightedFulfilment(oc.spec.Terms, t.RTBySource, t.Load)
	// The migration blackout removes the migrating fraction of the tick.
	t.SLA = lvl * (1 - downFrac)

	// True resource use: a VM cannot use more than granted, and uses less
	// when the load does not need the full grant.
	wantCPU := p.VMBaseCPUPct + total.RPS*total.CPUTimeReq*p.cpuCostFactor()*100
	t.Used = model.Resources{
		CPUPct: math.Min(wantCPU, t.Granted.CPUPct),
		MemMB:  math.Min(t.Required.MemMB, t.Granted.MemMB),
		BWMbps: math.Min(t.Required.BWMbps, t.Granted.BWMbps),
	}
}

// Run advances n ticks, invoking cb (if non-nil) after each.
func (w *World) Run(n int, cb func(TickStats)) {
	for i := 0; i < n; i++ {
		st := w.Step()
		if cb != nil {
			cb(st)
		}
	}
}

// AvgFacilityWatts returns the mean facility draw per tick so far.
func (w *World) AvgFacilityWatts() float64 { return w.energy.AvgWatts(TickHours) }
