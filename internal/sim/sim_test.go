package sim_test

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/scenario"
	. "repro/internal/sim"
)

// testOpts mirrors the historical scenario knobs the world tests exercise.
type testOpts struct {
	Seed               uint64
	VMs, PMsPerDC, DCs int
	LoadScale, NoiseSD float64
}

func newTestScenario(t *testing.T, opts testOpts) *scenario.Scenario {
	t.Helper()
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	sc, err := scenario.Build(scenario.Spec{
		Name: "sim-test", Seed: opts.Seed,
		DCs: opts.DCs, PMsPerDC: opts.PMsPerDC, VMs: opts.VMs,
		LoadScale: opts.LoadScale, NoiseSD: opts.NoiseSD,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{}); err == nil {
		t.Fatal("accepted empty config")
	}
}

func TestUnplacedVMsEarnNothing(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 2, PMsPerDC: 1, DCs: 2})
	st := sc.World.Step()
	if st.AvgSLA != 0 {
		t.Fatalf("unplaced AvgSLA = %v, want 0", st.AvgSLA)
	}
	if st.RevenueEUR != 0 {
		t.Fatalf("unplaced revenue = %v", st.RevenueEUR)
	}
	if st.ActivePMs != 0 || st.FacilityWatts != 0 {
		t.Fatalf("idle fleet burning power: %d PMs, %v W", st.ActivePMs, st.FacilityWatts)
	}
}

func TestPlacedVMServesWell(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 1})
	if err := sc.World.PlaceInitial(model.Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	var last TickStats
	sc.World.Run(30, func(st TickStats) { last = st })
	if last.AvgSLA < 0.9 {
		t.Fatalf("lone well-provisioned VM SLA = %v", last.AvgSLA)
	}
	if last.ActivePMs != 1 {
		t.Fatalf("ActivePMs = %d", last.ActivePMs)
	}
	if last.FacilityWatts < 40 || last.FacilityWatts > 50 {
		t.Fatalf("one Atom host facility watts = %v, want ~42-48", last.FacilityWatts)
	}
	truth, ok := sc.World.VMTruthAt(0)
	if !ok {
		t.Fatal("no truth recorded")
	}
	if !truth.Used.NonNegative() {
		t.Fatalf("negative usage: %v", truth.Used)
	}
	if truth.Used.CPUPct > truth.Granted.CPUPct+1e-9 {
		t.Fatal("VM used more CPU than granted")
	}
}

func TestPlaceInitialAfterStepFails(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 1})
	sc.World.Step()
	if err := sc.World.PlaceInitial(model.Placement{0: 0}); err == nil {
		t.Fatal("PlaceInitial allowed after Step")
	}
}

func TestOverloadDegradesSLA(t *testing.T) {
	// Crank load far beyond one host's capacity.
	sc := newTestScenario(t, testOpts{VMs: 4, PMsPerDC: 1, DCs: 1, LoadScale: 6})
	p := model.Placement{}
	for i := 0; i < 4; i++ {
		p[model.VMID(i)] = 0
	}
	if err := sc.World.PlaceInitial(p); err != nil {
		t.Fatal(err)
	}
	// Advance to midday where load is heavy.
	var worst float64 = 1
	sc.World.Run(12*60, func(st TickStats) {
		if st.AvgSLA < worst {
			worst = st.AvgSLA
		}
	})
	if worst > 0.85 {
		t.Fatalf("4 heavy VMs on one Atom never stressed SLA: worst %v", worst)
	}
}

func TestMigrationBlackoutAndPenalty(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(model.Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	sc.World.Step()
	preLedger := sc.World.Ledger()
	if err := sc.World.ApplySchedule(model.Placement{0: 1}); err != nil {
		t.Fatal(err)
	}
	if sc.World.TotalMigrations() != 1 {
		t.Fatalf("migrations = %d", sc.World.TotalMigrations())
	}
	post := sc.World.Ledger()
	if post.Penalties() <= preLedger.Penalties() {
		t.Fatal("migration charged no penalty")
	}
	st := sc.World.Step()
	truth, _ := sc.World.VMTruthAt(0)
	if !truth.Migrating {
		t.Fatal("VM not marked migrating")
	}
	// The blackout must visibly depress SLA this tick.
	if st.AvgSLA > 0.95 {
		t.Fatalf("migration tick SLA = %v, expected depression", st.AvgSLA)
	}
	// Next tick the VM recovers (migration lasted under a minute).
	st2 := sc.World.Step()
	if st2.AvgSLA <= st.AvgSLA {
		t.Fatalf("SLA did not recover after migration: %v -> %v", st.AvgSLA, st2.AvgSLA)
	}
}

func TestInitialPlacementViaApplyCostsNothing(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 2})
	if err := sc.World.ApplySchedule(model.Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	if sc.World.TotalMigrations() != 0 {
		t.Fatal("first placement counted as migration")
	}
}

func TestConsolidationUsesFewerWatts(t *testing.T) {
	// Two VMs on one PM vs two PMs: consolidated must burn fewer watts.
	run := func(p model.Placement) float64 {
		sc := newTestScenario(t, testOpts{VMs: 2, PMsPerDC: 2, DCs: 1})
		if err := sc.World.PlaceInitial(p); err != nil {
			t.Fatal(err)
		}
		var watts float64
		n := 60
		sc.World.Run(n, func(st TickStats) { watts += st.FacilityWatts })
		return watts / float64(n)
	}
	consolidated := run(model.Placement{0: 0, 1: 0})
	spread := run(model.Placement{0: 0, 1: 1})
	if consolidated >= spread {
		t.Fatalf("consolidation not cheaper: %v vs %v", consolidated, spread)
	}
	if spread-consolidated < 25 {
		t.Fatalf("consolidation saving too small: %v W", spread-consolidated)
	}
}

func TestRemoteHostingAddsTransportRT(t *testing.T) {
	// Same VM hosted at home vs across the world: remote must see worse SLA
	// under identical load.
	run := func(pm model.PMID) float64 {
		sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 4, Seed: 9})
		if err := sc.World.PlaceInitial(model.Placement{0: pm}); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		n := 120
		sc.World.Run(n, func(st TickStats) { sum += st.AvgSLA })
		return sum / float64(n)
	}
	home := run(0)   // Brisbane host, home DC 0
	remote := run(2) // Barcelona host: 390 ms away from Brisbane clients
	if home <= remote {
		t.Fatalf("remote hosting should cost SLA: home %v vs remote %v", home, remote)
	}
}

func TestPMTruthAndPerDCWatts(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 2, PMsPerDC: 1, DCs: 2})
	if err := sc.World.PlaceInitial(model.Placement{0: 0, 1: 1}); err != nil {
		t.Fatal(err)
	}
	st := sc.World.Step()
	if len(st.PerDCWatts) != 2 {
		t.Fatalf("PerDCWatts = %v", st.PerDCWatts)
	}
	total := 0.0
	for _, w := range st.PerDCWatts {
		total += w
	}
	if math.Abs(total-st.FacilityWatts) > 1e-9 {
		t.Fatalf("per-DC watts %v != total %v", total, st.FacilityWatts)
	}
	pt, ok := sc.World.PMTruthAt(0)
	if !ok || !pt.On || pt.Guests != 1 {
		t.Fatalf("PMTruth = %+v", pt)
	}
	// PM CPU must exceed its single guest's CPU (virtualisation overhead).
	vt, _ := sc.World.VMTruthAt(0)
	if pt.Usage.CPUPct <= vt.Used.CPUPct {
		t.Fatalf("PM CPU %v not above guest CPU %v", pt.Usage.CPUPct, vt.Used.CPUPct)
	}
	off, ok := sc.World.PMTruthAt(1)
	if !ok || !off.On {
		t.Fatal("PM 1 should be on (has guest)")
	}
}

func TestRequiredResourcesShape(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 1, PMsPerDC: 1, DCs: 1})
	spec := sc.VMs[0]
	low := sc.World.RequiredResources(spec, model.Load{RPS: 5, CPUTimeReq: 0.01, BytesOutRq: 1000})
	high := sc.World.RequiredResources(spec, model.Load{RPS: 50, CPUTimeReq: 0.01, BytesOutRq: 1000})
	if high.CPUPct <= low.CPUPct || high.MemMB <= low.MemMB || high.BWMbps <= low.BWMbps {
		t.Fatalf("requirements not increasing in load: %v vs %v", low, high)
	}
	// Memory linear in RPS with the configured slope.
	slope := (high.MemMB - low.MemMB) / 45
	if math.Abs(slope-sc.World.Params().MemPerRPS) > 1e-9 {
		t.Fatalf("memory slope = %v", slope)
	}
	// Memory caps at the container limit.
	huge := sc.World.RequiredResources(spec, model.Load{RPS: 1e6, CPUTimeReq: 0.01})
	if huge.MemMB != spec.MaxMemMB {
		t.Fatalf("memory cap = %v, want %v", huge.MemMB, spec.MaxMemMB)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		sc := newTestScenario(t, testOpts{VMs: 3, PMsPerDC: 2, DCs: 2, Seed: 77, NoiseSD: 0.1})
		p := model.Placement{0: 0, 1: 1, 2: 2}
		if err := sc.World.PlaceInitial(p); err != nil {
			t.Fatal(err)
		}
		var out []float64
		sc.World.Run(50, func(st TickStats) {
			out = append(out, st.AvgSLA, st.FacilityWatts, st.ProfitEUR)
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at index %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestQueueBacklogGrowsUnderOverload(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 4, PMsPerDC: 1, DCs: 1, LoadScale: 8})
	p := model.Placement{}
	for i := 0; i < 4; i++ {
		p[model.VMID(i)] = 0
	}
	if err := sc.World.PlaceInitial(p); err != nil {
		t.Fatal(err)
	}
	maxQ := 0.0
	sc.World.Run(12*60, func(TickStats) {
		for i := 0; i < 4; i++ {
			if truth, ok := sc.World.VMTruthAt(model.VMID(i)); ok && truth.QueueLen > maxQ {
				maxQ = truth.QueueLen
			}
		}
	})
	if maxQ == 0 {
		t.Fatal("overloaded system never queued")
	}
}

func TestHomePlacement(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 5, PMsPerDC: 1, DCs: 4})
	p := sc.HomePlacement()
	for _, vm := range sc.VMs {
		pm := p[vm.ID]
		if sc.Inventory.DCOf(pm) != vm.HomeDC {
			t.Fatalf("VM %v placed at DC %v, home %v", vm.ID, sc.Inventory.DCOf(pm), vm.HomeDC)
		}
	}
}

func TestLedgerConsistency(t *testing.T) {
	sc := newTestScenario(t, testOpts{VMs: 2, PMsPerDC: 1, DCs: 2})
	sc.World.PlaceInitial(model.Placement{0: 0, 1: 1})
	var last TickStats
	sc.World.Run(30, func(st TickStats) { last = st })
	l := sc.World.Ledger()
	if math.Abs(l.Profit()-(l.Revenue()-l.Penalties()-l.EnergyCost())) > 1e-12 {
		t.Fatal("ledger identity violated")
	}
	if math.Abs(last.ProfitEUR-l.Profit()) > 1e-9 {
		t.Fatalf("tick profit %v != ledger %v", last.ProfitEUR, l.Profit())
	}
	if l.Ticks() != 30 {
		t.Fatalf("ticks = %d", l.Ticks())
	}
	if sc.World.AvgFacilityWatts() <= 0 {
		t.Fatal("no average watts recorded")
	}
}
