package sim

import (
	"fmt"

	"repro/internal/model"
)

// VMHandle identifies one admitted VM for the lifetime of its admission.
// Slots are reused once a VM retires (the engine keeps a free-list so the
// SoA truth slices never grow during a run), so a bare slot index is not a
// stable identity; the generation counter is. A handle whose generation no
// longer matches the slot's is stale and every operation on it fails —
// the classic index-reuse bug class is unrepresentable.
type VMHandle struct {
	Slot int32
	Gen  uint32
}

// ActiveVM reports whether slot i currently holds an admitted VM. Callers
// iterating the dense index space [0, NumVMs()) under workload churn must
// skip inactive slots.
func (e *Engine) ActiveVM(i int) bool {
	return i >= 0 && i < e.nVM && e.activeVM[i]
}

// NumActiveVMs returns how many VMs are currently admitted.
func (e *Engine) NumActiveVMs() int { return e.nActive }

// VMSlotCap returns the total slot capacity (static population plus
// Config.ExtraVMSlots). AdmitVM fails once every slot is live.
func (e *Engine) VMSlotCap() int { return e.capVM }

// HandleOf returns the current handle of slot i; ok is false for
// inactive slots.
func (e *Engine) HandleOf(i int) (VMHandle, bool) {
	if !e.ActiveVM(i) {
		return VMHandle{}, false
	}
	return VMHandle{Slot: int32(i), Gen: e.gens[i]}, true
}

// LookupVM resolves a VM ID to its live handle.
func (e *Engine) LookupVM(id model.VMID) (VMHandle, bool) {
	i, ok := e.vmByID[id]
	if !ok {
		return VMHandle{}, false
	}
	return VMHandle{Slot: int32(i), Gen: e.gens[i]}, true
}

// Valid reports whether a handle still refers to a live admission.
func (e *Engine) Valid(h VMHandle) bool {
	i := int(h.Slot)
	return i >= 0 && i < e.nVM && e.activeVM[i] && e.gens[i] == h.Gen
}

// AdmitVM brings a new VM into the running world: it claims a slot (from
// the free-list when one exists, extending the high-water mark otherwise),
// registers the VM with the placement state and the monitoring pipeline,
// and returns its handle. The VM starts unplaced and produces load from
// the workload generator on the next Step. Admission happens between
// ticks; it may allocate (map inserts), but the tick hot path stays
// allocation-free because every per-slot buffer was sized at construction.
func (e *Engine) AdmitVM(spec model.VMSpec) (VMHandle, error) {
	if _, dup := e.vmByID[spec.ID]; dup {
		return VMHandle{}, fmt.Errorf("sim: VM %v already admitted", spec.ID)
	}
	var slot int
	fromFree := false
	switch {
	case len(e.freeSlots) > 0:
		slot = int(e.freeSlots[len(e.freeSlots)-1])
		e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
		fromFree = true
	case e.nVM < e.capVM:
		slot = e.nVM
		e.nVM++
	default:
		return VMHandle{}, fmt.Errorf("sim: VM slots exhausted (%d live of %d)", e.nActive, e.capVM)
	}
	if err := e.state.AddVM(spec); err != nil {
		if fromFree {
			e.freeSlots = append(e.freeSlots, int32(slot))
		} else {
			e.nVM--
		}
		return VMHandle{}, err
	}
	e.gens[slot]++
	e.activeVM[slot] = true
	e.nActive++
	e.vmIDs[slot] = spec.ID
	e.vmSpecs[slot] = spec
	e.vmByID[spec.ID] = slot
	e.hostOf[slot] = -1
	e.clearVMSlot(slot)
	e.obs.EnsureVM(spec.ID)
	e.rebuildFill()
	return VMHandle{Slot: int32(slot), Gen: e.gens[slot]}, nil
}

// RetireVM removes a VM from the world: it is evicted from its host (no
// migration cost — the service is shutting down, not moving), dropped
// from the placement state and the monitors, and its slot returns to the
// free-list with a bumped generation so the handle — and any copy of it —
// dies with the VM. Only dynamically admitted VMs can retire; the static
// inventory population is permanent.
func (e *Engine) RetireVM(h VMHandle) error {
	i := int(h.Slot)
	if !e.Valid(h) {
		return fmt.Errorf("sim: stale or unknown VM handle {slot %d gen %d}", h.Slot, h.Gen)
	}
	id := e.vmIDs[i]
	// Reject non-dynamic VMs before touching any state: a partial retire
	// would desynchronise the dense mirrors from cluster.State.
	if _, dynamic := e.state.DynamicVM(id); !dynamic {
		return fmt.Errorf("sim: %v is part of the static inventory population and cannot retire", id)
	}
	// RemoveVM evicts from the guest list and placement map itself.
	if err := e.state.RemoveVM(id); err != nil {
		return err
	}
	e.obs.ForgetVM(id)
	delete(e.vmByID, id)
	e.gens[i]++
	e.activeVM[i] = false
	e.nActive--
	e.backlog[i] = 0
	e.downtime[i] = 0
	e.freeSlots = append(e.freeSlots, int32(i))
	e.syncPlacement()
	e.rebuildFill()
	return nil
}

// clearVMSlot zeroes the persistent and per-tick truth of a slot so a
// reused slot starts life with no residue of its previous tenant (no
// inherited gateway backlog, no stale truth rows).
func (e *Engine) clearVMSlot(i int) {
	e.backlog[i] = 0
	e.downtime[i] = 0
	row := e.loadRows[i]
	for k := range row {
		row[k] = model.Load{}
	}
	e.totals[i] = model.Load{}
	e.required[i] = model.Resources{}
	e.granted[i] = model.Resources{}
	e.used[i] = model.Resources{}
	e.rtProcess[i] = 0
	rt := e.rtRow(i)
	for k := range rt {
		rt[k] = 0
	}
	e.slaLvl[i] = 0
	e.queueLen[i] = 0
	e.migrating[i] = false
}

// rebuildFill recompacts the active-slot view handed to the workload
// generator. It runs only on admit/retire — never per tick — and reuses
// its backing arrays (capacity fixed at construction), so steady-state
// ticks stay allocation-free.
func (e *Engine) rebuildFill() {
	e.fillIDs = e.fillIDs[:0]
	e.fillRows = e.fillRows[:0]
	for i := 0; i < e.nVM; i++ {
		if !e.activeVM[i] {
			continue
		}
		e.fillIDs = append(e.fillIDs, e.vmIDs[i])
		e.fillRows = append(e.fillRows, e.loadRows[i])
	}
}
