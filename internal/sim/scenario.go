package sim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/trace"
)

// Scenario bundles the pieces of a ready-to-run experiment setup.
type Scenario struct {
	World     *World
	Inventory *cluster.Inventory
	Topology  *network.Topology
	Generator *trace.Generator
	VMs       []model.VMSpec
}

// ScenarioOpts parameterises the standard paper setups.
type ScenarioOpts struct {
	Seed       uint64
	VMs        int     // number of virtual machines (paper: 5)
	PMsPerDC   int     // physical machines per datacenter
	DCs        int     // datacenters drawn from the paper topology (max 4)
	LoadScale  float64 // multiplies every request rate (1 = nominal)
	NoiseSD    float64 // workload noise
	FlashCrowd bool    // inject the Figure 6 minute-70..90 crowd
	// HomeBias is the share of each VM's load originating at its home
	// location (0 = generator default of 0.6; intra-DC experiments use a
	// high bias so clients are local).
	HomeBias float64
	// AllHomesAt homes every VM in one DC instead of round-robin when
	// non-nil (the §V-C de-location setup, where a single DC carries all
	// the load).
	AllHomesAt *model.DCID
	// UniformClass assigns every VM the same service class instead of
	// cycling through the built-in mix.
	UniformClass *trace.ServiceClass
}

// atomCapacity is the per-PM capacity of the paper's Atom hosts: 4 cores,
// 4 GB of RAM and a 1 Gbps NIC.
var atomCapacity = model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 1000}

// DefaultVMSpecs builds n VM specs in the paper's style: 4 GB images,
// 256 MB memory floor, EC2-like pricing, homes spread round-robin over dcs.
func DefaultVMSpecs(n, dcs int) []model.VMSpec {
	specs := make([]model.VMSpec, n)
	for i := range specs {
		specs[i] = model.VMSpec{
			ID:          model.VMID(i),
			Name:        fmt.Sprintf("web%d", i),
			ImageSizeGB: 4,
			BaseMemMB:   256,
			MaxMemMB:    1024,
			Terms:       model.DefaultSLATerms,
			PriceEURh:   0.17,
			HomeDC:      model.DCID(i % dcs),
		}
	}
	return specs
}

// NewScenario assembles inventory, topology, workload and world for the
// standard multi-DC setup of Section V: up to four DCs (Brisbane,
// Bangaluru, Barcelona, Boston) with Atom PMs.
func NewScenario(opts ScenarioOpts) (*Scenario, error) {
	if opts.DCs <= 0 || opts.DCs > 4 {
		return nil, fmt.Errorf("sim: DCs must be 1..4, got %d", opts.DCs)
	}
	if opts.VMs <= 0 {
		return nil, fmt.Errorf("sim: need at least one VM")
	}
	if opts.PMsPerDC <= 0 {
		return nil, fmt.Errorf("sim: need at least one PM per DC")
	}
	if opts.LoadScale <= 0 {
		opts.LoadScale = 1
	}
	top := network.PaperTopology()
	var pms []model.PMSpec
	id := 0
	for dc := 0; dc < opts.DCs; dc++ {
		for k := 0; k < opts.PMsPerDC; k++ {
			pms = append(pms, model.PMSpec{
				ID: model.PMID(id), DC: model.DCID(dc),
				Capacity: atomCapacity, Cores: 4,
			})
			id++
		}
	}
	vms := DefaultVMSpecs(opts.VMs, opts.DCs)
	if opts.AllHomesAt != nil {
		for i := range vms {
			vms[i].HomeDC = *opts.AllHomesAt
		}
	}
	inv, err := cluster.NewInventory(pms, vms)
	if err != nil {
		return nil, err
	}
	scale := make(map[model.VMID][]float64, len(vms))
	for _, vm := range vms {
		row := make([]float64, 4)
		for i := range row {
			row[i] = opts.LoadScale
		}
		scale[vm.ID] = row
	}
	cfg := trace.Config{
		Seed:      opts.Seed,
		Sources:   4,
		VMs:       vms,
		TZOffsetH: trace.PaperTZOffsets(),
		Scale:     scale,
		NoiseSD:   opts.NoiseSD,
		HomeBias:  opts.HomeBias,
	}
	if opts.UniformClass != nil {
		cfg.ClassOf = make(map[model.VMID]trace.ServiceClass, len(vms))
		for _, vm := range vms {
			cfg.ClassOf[vm.ID] = *opts.UniformClass
		}
	}
	if opts.FlashCrowd {
		// The paper's crowd hits in minutes 70-90 and "clearly exceeds the
		// capacity of the system".
		for _, vm := range vms {
			cfg.Crowds = append(cfg.Crowds, trace.FlashCrowd{
				StartTick: 70, EndTick: 90, Magnitude: 6,
				Source: model.LocationID(int(vm.HomeDC)), VM: vm.ID,
			})
		}
	}
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	world, err := NewWorld(Config{
		Inventory: inv,
		Topology:  top,
		Generator: gen,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Scenario{World: world, Inventory: inv, Topology: top, Generator: gen, VMs: vms}, nil
}

// HomePlacement returns the placement that pins every VM to the first PM of
// its home DC — the static baseline of Figure 7 / Table III.
func (s *Scenario) HomePlacement() model.Placement {
	p := make(model.Placement, len(s.VMs))
	for _, vm := range s.VMs {
		pms := s.Inventory.PMsOfDC(vm.HomeDC)
		if len(pms) == 0 {
			p[vm.ID] = model.NoPM
			continue
		}
		p[vm.ID] = pms[int(vm.ID)%len(pms)]
	}
	return p
}
