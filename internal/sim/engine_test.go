package sim_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/scenario"
)

// buildPair constructs two identical worlds with identical placements so
// one can be driven through the World adapter and one through the Engine.
func buildPair(t *testing.T) (*scenario.Scenario, *scenario.Scenario) {
	t.Helper()
	mk := func() *scenario.Scenario {
		sc, err := scenario.Build(scenario.Spec{
			Name: "engine-test", Seed: 1234,
			DCs: 3, PMsPerDC: 2, VMs: 5,
			LoadScale: 2, NoiseSD: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
			t.Fatal(err)
		}
		return sc
	}
	return mk(), mk()
}

// TestEngineMatchesWorldBitForBit drives the same seed through the Engine
// path and the World adapter path, with mid-run placement churn, and
// requires every metric to match exactly: the adapter must add map views,
// never computation.
func TestEngineMatchesWorldBitForBit(t *testing.T) {
	scW, scE := buildPair(t)
	world := scW.World
	eng := scE.World.Engine

	churn := model.Placement{0: 1, 1: 2, 2: 3, 3: 4, 4: 5}
	for tick := 0; tick < 120; tick++ {
		if tick == 40 {
			if err := world.ApplySchedule(churn); err != nil {
				t.Fatal(err)
			}
			if err := eng.ApplySchedule(churn); err != nil {
				t.Fatal(err)
			}
		}
		ws := world.Step()
		es := eng.Step()
		if ws.Tick != es.Tick || ws.AvgSLA != es.AvgSLA || ws.MinSLA != es.MinSLA ||
			ws.FacilityWatts != es.FacilityWatts || ws.ActivePMs != es.ActivePMs ||
			ws.Migrations != es.Migrations || ws.RevenueEUR != es.RevenueEUR ||
			ws.EnergyEUR != es.EnergyEUR || ws.PenaltyEUR != es.PenaltyEUR ||
			ws.ProfitEUR != es.ProfitEUR || ws.TotalRPS != es.TotalRPS {
			t.Fatalf("tick %d diverged:\nworld  %+v\nengine %+v", tick, ws, es)
		}
		// The adapter's per-DC map must be the engine's dense split.
		watts, active := eng.PerDCWatts(), eng.PerDCActive()
		for dc, w := range ws.PerDCWatts {
			if watts[dc] != w {
				t.Fatalf("tick %d: PerDCWatts[%v] %v != engine %v", tick, dc, w, watts[dc])
			}
			if active[dc] == 0 {
				t.Fatalf("tick %d: adapter reports idle DC %v", tick, dc)
			}
		}
		// Truth views agree per VM.
		for i := 0; i < eng.NumVMs(); i++ {
			id := eng.VMSpecAt(i).ID
			wt, okW := world.VMTruthAt(id)
			et, okE := eng.VMTruthByIndex(i)
			if okW != okE {
				t.Fatalf("tick %d vm %v: truth availability diverged", tick, id)
			}
			if wt.SLA != et.SLA || wt.RTProcess != et.RTProcess || wt.Used != et.Used ||
				wt.QueueLen != et.QueueLen || wt.Host != et.Host {
				t.Fatalf("tick %d vm %v: truth diverged\nworld  %+v\nengine %+v", tick, id, wt, et)
			}
		}
	}
	if world.Ledger() != eng.Ledger() {
		t.Fatalf("ledgers diverged: %+v vs %+v", world.Ledger(), eng.Ledger())
	}
}

// TestEngineStepDoesNotAllocate is the allocation regression gate for the
// tick hot path: after warmup (monitor rings filled), a tick must perform
// zero allocations — no per-tick maps, no fresh load vectors, no truth
// structs.
func TestEngineStepDoesNotAllocate(t *testing.T) {
	sc, err := scenario.Build(scenario.Spec{
		Name: "allocs", Seed: 99,
		DCs: 4, PMsPerDC: 2, VMs: 6,
		LoadScale: 1.5, NoiseSD: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	eng := sc.World.Engine
	for i := 0; i < 30; i++ { // warmup: observer rings reach capacity
		eng.Step()
	}
	avg := testing.AllocsPerRun(100, func() { eng.Step() })
	if avg != 0 {
		t.Fatalf("Engine.Step allocates %.1f times per tick, want 0", avg)
	}
}

// TestEngineDenseAccessors pins the index-based API to the ID-based one.
func TestEngineDenseAccessors(t *testing.T) {
	sc, err := scenario.Build(scenario.Spec{
		Name: "dense", Seed: 7, DCs: 2, PMsPerDC: 2, VMs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sc.World.Engine
	if eng.NumVMs() != 3 || eng.NumPMs() != 4 {
		t.Fatalf("dense sizes: %d VMs, %d PMs", eng.NumVMs(), eng.NumPMs())
	}
	if err := sc.World.PlaceInitial(model.Placement{0: 0, 1: 1, 2: model.NoPM}); err != nil {
		t.Fatal(err)
	}
	sc.World.Step()
	for i := 0; i < eng.NumVMs(); i++ {
		id := eng.VMSpecAt(i).ID
		if got, ok := eng.VMIndex(id); !ok || got != i {
			t.Fatalf("VMIndex(%v) = %d,%v want %d", id, got, ok, i)
		}
	}
	if j := eng.HostIndexOf(2); j != -1 {
		t.Fatalf("unplaced VM has host index %d", j)
	}
	j := eng.HostIndexOf(0)
	if j < 0 || eng.PMSpecAt(j).ID != sc.World.State().HostOf(0) {
		t.Fatalf("HostIndexOf(0) = %d does not match state", j)
	}
	truth, ok := eng.VMTruthByIndex(0)
	if !ok || truth.Host != eng.PMSpecAt(j).ID {
		t.Fatalf("truth host %v != index host", truth.Host)
	}
	if len(truth.Load) != eng.NumLocations() || len(truth.RTBySource) != eng.NumLocations() {
		t.Fatalf("truth rows sized %d/%d, want %d", len(truth.Load), len(truth.RTBySource), eng.NumLocations())
	}
}
