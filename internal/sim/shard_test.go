package sim_test

// Sharded-tick determinism: Engine.Step's per-DC parallel resolution
// phase must be byte-identical to the serial tick at any worker count.
// The RT-noise pre-pass pins the "sim/rt" stream order, the resolution
// phase writes only PM-/guest-indexed state, and every accumulation
// (per-DC watts, ledger, monitor draws) runs serially in inventory order
// — so the fingerprint of a run, covering every truth field of every VM
// and PM on every tick, cannot depend on TickWorkers.

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// runFingerprint drives a 6-DC fleet for `ticks` ticks at the given
// worker count — including a crash, a drain and a recovery mid-run — and
// hashes every observable bit of engine state after each tick.
func runFingerprint(t *testing.T, workers, ticks int) uint64 {
	t.Helper()
	sc, err := scenario.Build(scenario.Spec{
		Name: "shard-test", Seed: 99,
		DCs: 6, PMsPerDC: 3, VMs: 24,
		LoadScale: 1.5, NoiseSD: 0.25, HomeBias: 0.5,
		TickWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	e := sc.World.Engine

	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }

	for tick := 0; tick < ticks; tick++ {
		// Fault events between ticks, at fixed points of the run: the
		// sharded phase must stay deterministic across crash holes in the
		// guest lists and draining hosts.
		switch tick {
		case 8:
			if err := e.FailPM(e.PMSpecAt(1).ID); err != nil {
				t.Fatal(err)
			}
		case 10:
			if err := e.DrainPM(e.PMSpecAt(7).ID); err != nil {
				t.Fatal(err)
			}
		case 16:
			if err := e.RecoverPM(e.PMSpecAt(1).ID); err != nil {
				t.Fatal(err)
			}
			if err := e.RecoverPM(e.PMSpecAt(7).ID); err != nil {
				t.Fatal(err)
			}
		}
		s := e.Step()
		wf(s.AvgSLA)
		wf(s.MinSLA)
		wf(s.FacilityWatts)
		w64(uint64(s.ActivePMs))
		wf(s.RevenueEUR)
		wf(s.EnergyEUR)
		wf(s.PenaltyEUR)
		wf(s.ProfitEUR)
		wf(s.TotalRPS)
		w64(uint64(s.UnplacedVMs))
		w64(uint64(s.FailedPMs))
		w64(uint64(s.DrainingPMs))
		for i := 0; i < e.NumVMs(); i++ {
			truth, ok := e.VMTruthByIndex(i)
			if !ok {
				continue
			}
			wf(truth.Total.RPS)
			wf(truth.Required.CPUPct)
			wf(truth.Required.MemMB)
			wf(truth.Required.BWMbps)
			wf(truth.Granted.CPUPct)
			wf(truth.Granted.MemMB)
			wf(truth.Granted.BWMbps)
			wf(truth.Used.CPUPct)
			wf(truth.Used.MemMB)
			wf(truth.Used.BWMbps)
			wf(truth.RTProcess)
			for _, rt := range truth.RTBySource {
				wf(rt)
			}
			wf(truth.SLA)
			wf(truth.QueueLen)
		}
		for j := 0; j < e.NumPMs(); j++ {
			pm, ok := e.PMTruthByIndex(j)
			if !ok {
				continue
			}
			wf(pm.Usage.CPUPct)
			wf(pm.Usage.MemMB)
			wf(pm.Usage.BWMbps)
			wf(pm.ITWatts)
			wf(pm.FacilityWatts)
			w64(uint64(pm.Guests))
		}
		for _, w := range e.PerDCWatts() {
			wf(w)
		}
	}
	return h.Sum64()
}

// TestShardedTickDeterminism pins the sharding contract: 1..N workers,
// including counts above the DC count, produce byte-identical runs —
// through crash, drain and recovery ticks.
func TestShardedTickDeterminism(t *testing.T) {
	want := runFingerprint(t, 1, 24)
	for _, workers := range []int{2, 3, 4, 6, 9} {
		if got := runFingerprint(t, workers, 24); got != want {
			t.Fatalf("TickWorkers=%d fingerprint %x, serial %x", workers, got, want)
		}
	}
}

// TestTickWorkersSetter covers the runtime knob: an engine reconfigured
// mid-run must keep producing the serial run's bytes.
func TestTickWorkersSetter(t *testing.T) {
	mk := func() *sim.World {
		sc, err := scenario.Build(scenario.Spec{
			Name: "shard-setter", Seed: 7,
			DCs: 4, PMsPerDC: 2, VMs: 10,
			LoadScale: 1.2, NoiseSD: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
			t.Fatal(err)
		}
		return sc.World
	}
	a, b := mk(), mk()
	if got := b.TickWorkers(); got != 1 {
		t.Fatalf("default TickWorkers = %d, want 1", got)
	}
	b.SetTickWorkers(3)
	for tick := 0; tick < 12; tick++ {
		if tick == 6 {
			b.SetTickWorkers(2) // reconfigure mid-run
		}
		sa, sb := a.Engine.Step(), b.Engine.Step()
		if sa != sb {
			t.Fatalf("tick %d: serial %+v != sharded %+v", tick, sa, sb)
		}
	}
}
