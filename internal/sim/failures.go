package sim

import (
	"fmt"

	"repro/internal/model"
)

// Failure injection: physical machines can crash and recover mid-run. A
// failed host serves nothing, draws nothing, and its guests drop off the
// placement (their web-services stop answering until the next scheduling
// round finds them a new home). The paper's evaluation does not crash
// hosts, but any system a datacenter operator would adopt must survive
// them, and the management loop recovers for free: the failed host simply
// disappears from the candidate list.

// FailPM marks a host as failed, evicting its guests. Evicted VMs stay
// unplaced (and earn nothing) until a scheduler reassigns them.
func (w *World) FailPM(pm model.PMID) error {
	if _, ok := w.cfg.Inventory.PM(pm); !ok {
		return fmt.Errorf("sim: unknown PM %v", pm)
	}
	if w.failed == nil {
		w.failed = make(map[model.PMID]bool)
	}
	if w.failed[pm] {
		return nil
	}
	w.failed[pm] = true
	for _, vm := range w.state.GuestsOf(pm) {
		if err := w.state.Place(vm, model.NoPM); err != nil {
			return err
		}
		// In-flight migrations to a dead target are moot; the blackout
		// continues implicitly because the VM is unplaced.
		delete(w.downtime, vm)
	}
	return nil
}

// RecoverPM returns a failed host to service (empty; the next round may
// use it again).
func (w *World) RecoverPM(pm model.PMID) error {
	if _, ok := w.cfg.Inventory.PM(pm); !ok {
		return fmt.Errorf("sim: unknown PM %v", pm)
	}
	delete(w.failed, pm)
	return nil
}

// IsFailed reports whether a host is currently failed.
func (w *World) IsFailed(pm model.PMID) bool { return w.failed[pm] }

// FailedPMs returns the currently failed hosts in inventory order.
func (w *World) FailedPMs() []model.PMID {
	var out []model.PMID
	for _, pm := range w.cfg.Inventory.PMs() {
		if w.failed[pm.ID] {
			out = append(out, pm.ID)
		}
	}
	return out
}

// validatePlacementTargets rejects schedules that place VMs on failed
// hosts; the manager should never offer them, so this is a programming-
// error guard rather than a recoverable state.
func (w *World) validatePlacementTargets(p model.Placement) error {
	for vm, pm := range p {
		if pm != model.NoPM && w.failed[pm] {
			return fmt.Errorf("sim: placement puts %v on failed host %v", vm, pm)
		}
	}
	return nil
}
