package sim_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// stubLoad is a controllable workload: one load stream per VM, all at
// source 0, mutable between ticks.
type stubLoad struct {
	rps     map[model.VMID]float64
	cpuTime float64
}

func (s *stubLoad) Fill(tick int, vms []model.VMID, dst []model.LoadVector) {
	for i, id := range vms {
		row := dst[i]
		for k := range row {
			row[k] = model.Load{}
		}
		if r := s.rps[id]; r > 0 && len(row) > 0 {
			row[0] = model.Load{RPS: r, BytesInReq: 500, BytesOutRq: 10000, CPUTimeReq: s.cpuTime}
		}
	}
}

// churnEngine builds a tiny single-DC world with slot headroom and the
// stub workload: one Atom host, one static VM, two extra slots.
func churnEngine(t *testing.T, stub *stubLoad) *sim.Engine {
	t.Helper()
	pms := []model.PMSpec{{ID: 0, DC: 0, Capacity: model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 1000}, Cores: 4}}
	vms := []model.VMSpec{{
		ID: 0, Name: "static0", ImageSizeGB: 4, BaseMemMB: 256, MaxMemMB: 1024,
		Terms: model.DefaultSLATerms, PriceEURh: 0.17, HomeDC: 0,
	}}
	inv, err := cluster.NewInventory(pms, vms)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Config{
		Inventory:    inv,
		Topology:     network.PaperTopology(),
		Generator:    stub,
		Seed:         7,
		ExtraVMSlots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func dynSpec(id model.VMID) model.VMSpec {
	return model.VMSpec{
		ID: id, Name: "dyn", ImageSizeGB: 4, BaseMemMB: 256, MaxMemMB: 1024,
		Terms: model.DefaultSLATerms, PriceEURh: 0.17, HomeDC: 0,
	}
}

// TestAdmitRetireHandles pins the generation-indexed handle contract:
// slots are reused through the free-list, every reuse bumps the
// generation, and stale handles fail every operation.
func TestAdmitRetireHandles(t *testing.T) {
	stub := &stubLoad{rps: map[model.VMID]float64{}, cpuTime: 0.01}
	eng := churnEngine(t, stub)

	if got := eng.NumActiveVMs(); got != 1 {
		t.Fatalf("static population: %d active, want 1", got)
	}
	// The static population is permanent: retiring it must fail without
	// touching any state (the handle is otherwise perfectly valid).
	if err := eng.PlaceInitial(model.Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	if hs, ok := eng.HandleOf(0); !ok {
		t.Fatal("static slot has no handle")
	} else if err := eng.RetireVM(hs); err == nil {
		t.Fatal("static inventory VM retired")
	}
	if eng.HostIndexOf(0) != 0 || eng.State().HostOf(0) != 0 {
		t.Fatal("failed static retire mutated placement state")
	}
	h1, err := eng.AdmitVM(dynSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Valid(h1) || eng.NumActiveVMs() != 2 {
		t.Fatalf("admit failed: valid=%v active=%d", eng.Valid(h1), eng.NumActiveVMs())
	}
	if _, dup := eng.AdmitVM(dynSpec(100)); dup == nil {
		t.Fatal("duplicate ID admitted")
	}
	h2, err := eng.AdmitVM(dynSpec(101))
	if err != nil {
		t.Fatal(err)
	}
	// Capacity is 1 static + 2 extra: a third dynamic VM must be refused.
	if _, err := eng.AdmitVM(dynSpec(102)); err == nil {
		t.Fatal("admission beyond slot capacity succeeded")
	}
	if err := eng.RetireVM(h1); err != nil {
		t.Fatal(err)
	}
	if eng.Valid(h1) {
		t.Fatal("retired handle still valid")
	}
	if err := eng.RetireVM(h1); err == nil {
		t.Fatal("double retire succeeded")
	}
	// The freed slot is reused — same slot, new generation.
	h3, err := eng.AdmitVM(dynSpec(102))
	if err != nil {
		t.Fatal(err)
	}
	if h3.Slot != h1.Slot {
		t.Fatalf("free-list not reused: slot %d, want %d", h3.Slot, h1.Slot)
	}
	if h3.Gen == h1.Gen {
		t.Fatal("slot reuse did not bump the generation")
	}
	if eng.Valid(h1) {
		t.Fatal("stale handle resolves after slot reuse")
	}
	if i, ok := eng.VMIndex(100); ok {
		t.Fatalf("retired VM still resolves to slot %d", i)
	}
	if err := eng.RetireVM(h2); err != nil {
		t.Fatal(err)
	}
	if eng.NumActiveVMs() != 2 { // static0 + the re-admitted 102
		t.Fatalf("active VMs %d, want 2", eng.NumActiveVMs())
	}
}

// TestChurnBacklogBoundaries is the gateway-backlog regression gate at
// churn boundaries: the backlog never goes negative, drains to zero on a
// zero-arrival tick, and a slot reused by a new tenant starts with no
// inherited queue.
func TestChurnBacklogBoundaries(t *testing.T) {
	stub := &stubLoad{rps: map[model.VMID]float64{0: 200}, cpuTime: 0.05}
	eng := churnEngine(t, stub)
	if err := eng.PlaceInitial(model.Placement{0: 0}); err != nil {
		t.Fatal(err)
	}
	queueOf := func(id model.VMID) float64 {
		truth, ok := eng.VMTruthAt(id)
		if !ok {
			t.Fatalf("no truth for %v", id)
		}
		return truth.QueueLen
	}
	// Overload: 200 rps at 0.05 CPUs/req on a 4-core host must queue.
	for i := 0; i < 8; i++ {
		eng.Step()
		if q := queueOf(0); q < 0 {
			t.Fatalf("tick %d: negative backlog %v", i, q)
		}
	}
	if queueOf(0) <= 0 {
		t.Fatal("overload built no backlog")
	}
	// Zero-arrival tick: the idle gateway clears the queue entirely.
	stub.rps[0] = 0
	eng.Step()
	if q := queueOf(0); q != 0 {
		t.Fatalf("backlog %v after a zero-arrival tick, want 0", q)
	}

	// Churn boundary: a dynamic VM builds a backlog, retires, and the
	// slot's next tenant starts clean.
	h, err := eng.AdmitVM(dynSpec(200))
	if err != nil {
		t.Fatal(err)
	}
	stub.rps[200] = 200
	if err := eng.ApplySchedule(model.Placement{200: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		eng.Step()
	}
	if queueOf(200) <= 0 {
		t.Fatal("dynamic VM built no backlog")
	}
	slot := int(h.Slot)
	if err := eng.RetireVM(h); err != nil {
		t.Fatal(err)
	}
	h2, err := eng.AdmitVM(dynSpec(201))
	if err != nil {
		t.Fatal(err)
	}
	if int(h2.Slot) != slot {
		t.Fatalf("expected slot reuse (%d), got %d", slot, h2.Slot)
	}
	stub.rps[201] = 5 // light load: no reason for any queue
	if err := eng.ApplySchedule(model.Placement{201: 0}); err != nil {
		t.Fatal(err)
	}
	eng.Step()
	if q := queueOf(201); q != 0 {
		t.Fatalf("reused slot inherited backlog %v, want 0", q)
	}
}

// TestEngineStepZeroAllocWithChurn extends the tick allocation gate to a
// churn-enabled engine: after admissions and a retirement (between
// ticks), the steady-state Step still allocates nothing — churn sizing
// happened once, at construction.
func TestEngineStepZeroAllocWithChurn(t *testing.T) {
	sc, err := scenario.Build(scenario.MustPreset(scenario.ChurnPoisson, 99))
	if err != nil {
		t.Fatal(err)
	}
	eng := sc.World.Engine
	if eng.VMSlotCap() <= eng.NumVMs() {
		t.Fatalf("churn preset reserved no extra slots: cap %d, static %d", eng.VMSlotCap(), eng.NumVMs())
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	// Admit the first scripted arrivals by hand (the manager normally
	// does this), host one of them, retire another: the slot machinery is
	// exercised in every direction before measuring.
	if len(sc.Script.Arrivals) < 3 {
		t.Fatalf("script too short: %d arrivals", len(sc.Script.Arrivals))
	}
	var handles []sim.VMHandle
	for i := 0; i < 3; i++ {
		h, err := eng.AdmitVM(sc.Script.Arrivals[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := eng.ApplySchedule(model.Placement{sc.Script.Arrivals[0].Spec.ID: 0}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RetireVM(handles[1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ { // warmup: monitor rings reach capacity
		eng.Step()
	}
	avg := testing.AllocsPerRun(100, func() { eng.Step() })
	if avg != 0 {
		t.Fatalf("churn-enabled Engine.Step allocates %.1f times per tick, want 0", avg)
	}
}

// TestFixedPopulationSlotParity proves the slot machinery is invisible to
// fixed populations: an engine built with spare churn slots (but no churn
// events) is bit-identical — every tick summary and the final ledger — to
// one built without, across placement changes.
func TestFixedPopulationSlotParity(t *testing.T) {
	build := func(extra int) *sim.Engine {
		sc, err := scenario.Build(scenario.Spec{
			Name: "slot-parity", Seed: 4242,
			DCs: 3, PMsPerDC: 2, VMs: 5,
			LoadScale: 1.8, NoiseSD: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.NewEngine(sim.Config{
			Inventory:    sc.Inventory,
			Topology:     sc.Topology,
			Generator:    sc.Generator,
			Seed:         4242,
			ExtraVMSlots: extra,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.PlaceInitial(sc.HomePlacement()); err != nil {
			t.Fatal(err)
		}
		return eng
	}
	plain, slotted := build(0), build(8)
	churn := model.Placement{0: 1, 1: 2, 2: 3, 3: 4, 4: 5}
	for tick := 0; tick < 120; tick++ {
		if tick == 50 {
			if err := plain.ApplySchedule(churn); err != nil {
				t.Fatal(err)
			}
			if err := slotted.ApplySchedule(churn); err != nil {
				t.Fatal(err)
			}
		}
		a, b := plain.Step(), slotted.Step()
		if a != b {
			t.Fatalf("tick %d diverged:\nplain   %+v\nslotted %+v", tick, a, b)
		}
	}
	if plain.Ledger() != slotted.Ledger() {
		t.Fatalf("ledgers diverged: %+v vs %+v", plain.Ledger(), slotted.Ledger())
	}
}
