package sim

import (
	"repro/internal/obs"
)

// EngineMetrics is the engine's observability surface: per-tick counters
// and fleet gauges recorded at the end of every Step, plus the tick
// latency distribution. All handles are obs primitives whose record
// calls are allocation-free, so an instrumented Step keeps the zero-
// alloc tick contract (TestEngineStepZeroAllocWithMetrics pins it).
//
// Deterministic vs wall-clock: the counters and gauges are pure
// functions of the event stream (safe for reproducible sweep output);
// TickSeconds measures the wall clock and is registered WallClock so
// DeterministicSnapshot excludes it.
type EngineMetrics struct {
	Ticks         *obs.Counter
	Migrations    *obs.Counter
	ActiveVMs     *obs.Gauge
	UnplacedVMs   *obs.Gauge
	ActivePMs     *obs.Gauge
	FailedPMs     *obs.Gauge
	DrainingPMs   *obs.Gauge
	AvgSLA        *obs.Gauge
	FacilityWatts *obs.Gauge
	TickSeconds   *obs.Histogram
}

// NewEngineMetrics registers the engine metric family on a registry.
func NewEngineMetrics(r *obs.Registry) *EngineMetrics {
	return &EngineMetrics{
		Ticks: r.Counter("mdcsim_engine_ticks_total",
			"Engine ticks executed."),
		Migrations: r.Counter("mdcsim_engine_migrations_total",
			"VM migrations started."),
		ActiveVMs: r.Gauge("mdcsim_engine_active_vms",
			"Live VMs after the last tick."),
		UnplacedVMs: r.Gauge("mdcsim_engine_unplaced_vms",
			"Active VMs without a host after the last tick."),
		ActivePMs: r.Gauge("mdcsim_engine_active_pms",
			"Powered-on hosts after the last tick."),
		FailedPMs: r.Gauge("mdcsim_engine_failed_pms",
			"Crashed hosts after the last tick."),
		DrainingPMs: r.Gauge("mdcsim_engine_draining_pms",
			"Hosts draining for maintenance after the last tick."),
		AvgSLA: r.Gauge("mdcsim_engine_avg_sla",
			"Request-weighted fleet SLA fulfilment of the last tick."),
		FacilityWatts: r.Gauge("mdcsim_engine_facility_watts",
			"Facility power draw of the last tick."),
		TickSeconds: r.Histogram("mdcsim_engine_tick_seconds",
			"Engine tick wall latency.", nil, obs.WallClock()),
	}
}

// SetMetrics attaches (or, with nil, detaches) the engine's metric
// sinks. Recording costs a handful of atomic stores per tick and zero
// allocations; with no metrics attached Step does not even read the
// clock.
func (e *Engine) SetMetrics(m *EngineMetrics) { e.met = m }

// recordTick folds one completed tick into the metric sinks.
func (m *EngineMetrics) recordTick(sum *TickSummary, activeVMs int, sec float64) {
	m.Ticks.Inc()
	m.Migrations.Add(uint64(sum.Migrations))
	m.ActiveVMs.Set(float64(activeVMs))
	m.UnplacedVMs.Set(float64(sum.UnplacedVMs))
	m.ActivePMs.Set(float64(sum.ActivePMs))
	m.FailedPMs.Set(float64(sum.FailedPMs))
	m.DrainingPMs.Set(float64(sum.DrainingPMs))
	m.AvgSLA.Set(sum.AvgSLA)
	m.FacilityWatts.Set(sum.FacilityWatts)
	m.TickSeconds.Observe(sec)
}
