package sim_test

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/scenario"
	. "repro/internal/sim"
	"repro/internal/trace"
)

// TestWorldInvariantsUnderRandomPlacements drives a world through random
// placement churn and asserts the physical invariants every tick:
// bounded SLA, non-negative money flows, grants within capacity, power
// only on active hosts.
func TestWorldInvariantsUnderRandomPlacements(t *testing.T) {
	f := func(seed uint64, churn uint8) bool {
		sc, err := scenario.Build(scenario.Spec{
			Name: "invariants", Seed: seed%1000 + 1,
			DCs: 2, PMsPerDC: 2, VMs: 4, LoadScale: 2,
		})
		if err != nil {
			return false
		}
		pms := sc.Inventory.PMs()
		place := func(k int) model.Placement {
			p := model.Placement{}
			for i, vm := range sc.VMs {
				p[vm.ID] = pms[(i+k)%len(pms)].ID
			}
			return p
		}
		if err := sc.World.PlaceInitial(place(0)); err != nil {
			return false
		}
		period := int(churn%7) + 2
		prevRevenue, prevEnergy := 0.0, 0.0
		for tick := 0; tick < 60; tick++ {
			if tick > 0 && tick%period == 0 {
				if err := sc.World.ApplySchedule(place(tick)); err != nil {
					return false
				}
			}
			st := sc.World.Step()
			if st.AvgSLA < 0 || st.AvgSLA > 1 || st.MinSLA < 0 || st.MinSLA > 1 {
				t.Logf("SLA out of bounds: %+v", st)
				return false
			}
			if st.FacilityWatts < 0 || st.ActivePMs < 0 || st.ActivePMs > len(pms) {
				t.Logf("power/active out of bounds: %+v", st)
				return false
			}
			ledger := sc.World.Ledger()
			if ledger.Revenue() < prevRevenue-1e-9 || ledger.EnergyCost() < prevEnergy-1e-9 {
				t.Log("money flowed backwards")
				return false
			}
			prevRevenue, prevEnergy = ledger.Revenue(), ledger.EnergyCost()
			// Per-VM: grants within host capacity, usage within grants.
			for _, vm := range sc.VMs {
				truth, ok := sc.World.VMTruthAt(vm.ID)
				if !ok {
					return false
				}
				if truth.SLA < 0 || truth.SLA > 1 {
					return false
				}
				if !truth.Granted.NonNegative() || !truth.Used.NonNegative() {
					return false
				}
				if truth.Used.CPUPct > truth.Granted.CPUPct+1e-6 {
					t.Logf("usage above grant: %+v", truth)
					return false
				}
				if truth.RTProcess < 0 || truth.RTProcess > 20.0001 {
					return false
				}
			}
			// Per-PM: aggregate within capacity, watts only when on.
			for _, pm := range pms {
				pt, ok := sc.World.PMTruthAt(pm.ID)
				if !ok {
					continue
				}
				if pt.Usage.CPUPct > pm.Capacity.CPUPct+1e-6 {
					t.Logf("PM CPU above capacity: %+v", pt)
					return false
				}
				if !pt.On && pt.FacilityWatts != 0 {
					t.Log("off host drawing power")
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestWorldRunsOnReplayedTrace closes the loop between the synthetic
// generator, the CSV codec and the simulator: a world driven by a replayed
// export behaves identically to one driven by the generator.
func TestWorldRunsOnReplayedTrace(t *testing.T) {
	sc, err := scenario.Build(scenario.Spec{
		Name: "replay", Seed: 77, DCs: 2, PMsPerDC: 1, VMs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := sc.Generator
	var buf bytes.Buffer
	const ticks = 40
	if err := trace.ExportCSV(&buf, gen, ticks); err != nil {
		t.Fatal(err)
	}
	rep, err := trace.NewReplay(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	runWorld := func(w Workload) []float64 {
		world, err := NewWorld(Config{
			Inventory: sc.Inventory,
			Topology:  sc.Topology,
			Generator: w,
			Seed:      77,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := world.PlaceInitial(model.Placement{0: 0, 1: 0, 2: 1}); err != nil {
			t.Fatal(err)
		}
		var out []float64
		world.Run(ticks, func(st TickStats) {
			out = append(out, st.AvgSLA, st.FacilityWatts)
		})
		return out
	}
	fromGen := runWorld(gen)
	fromReplay := runWorld(rep)
	for i := range fromGen {
		// The CSV codec stores full float precision, so any drift indicates
		// a real mismatch, not rounding.
		if math.Abs(fromGen[i]-fromReplay[i]) > 1e-9 {
			t.Fatalf("replayed world diverged at %d: %v vs %v", i, fromGen[i], fromReplay[i])
		}
	}
}
