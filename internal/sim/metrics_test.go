package sim_test

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// TestEngineStepZeroAllocWithMetrics pins the tentpole contract of the
// observability layer: attaching the metric sinks must not cost the tick
// hot path a single allocation. Same setup as the churned-fleet gate,
// plus a live registry recording every tick.
func TestEngineStepZeroAllocWithMetrics(t *testing.T) {
	sc, err := scenario.Build(scenario.MustPreset(scenario.ChurnPoisson, 99))
	if err != nil {
		t.Fatal(err)
	}
	eng := sc.World.Engine
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.SetMetrics(sim.NewEngineMetrics(reg))
	for i := 0; i < 30; i++ { // warmup: monitor rings reach capacity
		eng.Step()
	}
	avg := testing.AllocsPerRun(100, func() { eng.Step() })
	if avg != 0 {
		t.Fatalf("instrumented Engine.Step allocates %.1f times per tick, want 0", avg)
	}
	// The sinks really recorded: 30 warmup ticks plus the 101 measured
	// ones (AllocsPerRun runs the body n+1 times).
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "mdcsim_engine_ticks_total 131") {
		t.Fatalf("tick counter missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "mdcsim_engine_tick_seconds_count 131") {
		t.Fatalf("tick latency histogram missing:\n%s", out)
	}
}

// TestEngineMetricsParity: recording metrics must not perturb the
// simulation — tick summaries with and without sinks are bit-identical.
func TestEngineMetricsParity(t *testing.T) {
	build := func(instrument bool) []sim.TickSummary {
		sc, err := scenario.Build(scenario.MustPreset(scenario.ChurnPoisson, 7))
		if err != nil {
			t.Fatal(err)
		}
		eng := sc.World.Engine
		if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
			t.Fatal(err)
		}
		if instrument {
			eng.SetMetrics(sim.NewEngineMetrics(obs.NewRegistry()))
		}
		out := make([]sim.TickSummary, 0, 50)
		for i := 0; i < 50; i++ {
			out = append(out, eng.Step())
		}
		return out
	}
	plain, inst := build(false), build(true)
	for i := range plain {
		if plain[i] != inst[i] {
			t.Fatalf("tick %d diverges with metrics attached:\n plain %+v\n inst  %+v", i, plain[i], inst[i])
		}
	}
}
