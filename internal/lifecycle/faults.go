package lifecycle

// Fault injection: the failure/maintenance analog of the arrival script.
// A FaultSpec declaratively describes per-host crash/repair processes,
// correlated DC-scoped outages and rolling maintenance drains; Generate-
// Faults expands it at build time into a deterministic FaultScript of
// typed events, a pure function of (seed, spec, fleet shape) — named PCG
// streams per host, no wall clock, no dependence on anything that happens
// during the run. The FaultRunner (faultrunner.go) replays the script into
// a managed simulation and keeps the availability accounting.

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/rng"
)

// FaultKind is the type of one scripted fault event.
type FaultKind uint8

const (
	// FaultCrash fails a host abruptly: its guests are evicted on the
	// spot and stay unplaced until a scheduler re-homes them.
	FaultCrash FaultKind = iota
	// FaultRepair returns a failed host (crashed, taken down for
	// maintenance, or both) to service, empty.
	FaultRepair
	// FaultDrainStart puts a host into drain: it accepts no new
	// placements but keeps its guests serving until the scheduler
	// migrates them out or the takedown deadline forces eviction.
	FaultDrainStart
	// FaultTakedown is the drain deadline: any guest still on the host is
	// force-evicted and the host goes offline for its maintenance window.
	FaultTakedown
	// FaultOutageStart fails every host of one DC at once — the
	// correlated availability-zone event.
	FaultOutageStart
	// FaultOutageEnd recovers every host of the DC.
	FaultOutageEnd
)

// String names the kind for reports and error messages.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRepair:
		return "repair"
	case FaultDrainStart:
		return "drain"
	case FaultTakedown:
		return "takedown"
	case FaultOutageStart:
		return "outage-start"
	case FaultOutageEnd:
		return "outage-end"
	}
	return fmt.Sprintf("faultkind(%d)", uint8(k))
}

// FaultEvent is one scripted fault. PM identifies the host for per-host
// kinds; DC identifies the datacenter for outage kinds.
type FaultEvent struct {
	Tick int
	Kind FaultKind
	PM   model.PMID
	DC   model.DCID
}

// FaultScript is a generated fault schedule, sorted by tick (equal-tick
// events keep their deterministic generation order: per-host processes in
// inventory order, then maintenance, then outages).
type FaultScript struct {
	Events []FaultEvent
}

// OutageSpec is one correlated DC-scoped outage window: every host of the
// DC fails at StartTick and recovers DurationTicks later.
type OutageSpec struct {
	DC            model.DCID
	StartTick     int
	DurationTicks int
}

// MaintenanceSpec schedules a rolling maintenance wave: hosts are drained
// one after another in inventory order, each given DrainDeadlineTicks to
// be emptied by the scheduler before the forced takedown, then held
// offline for OfflineTicks.
type MaintenanceSpec struct {
	// StartTick is when the first host starts draining.
	StartTick int
	// EveryTicks staggers consecutive hosts' drain starts (>= 1).
	EveryTicks int
	// DrainDeadlineTicks is the drain window before the forced takedown
	// (>= 1; give the scheduler at least one full round to migrate guests
	// out and the takedown evicts nobody).
	DrainDeadlineTicks int
	// OfflineTicks is how long the host stays down after takedown (>= 1).
	OfflineTicks int
	// MaxHosts bounds how many hosts the wave covers (0 = every host).
	MaxHosts int
}

// FaultSpec declaratively describes the failure and maintenance processes
// of a scenario. The zero value injects nothing; GenerateFaults validates
// the rest.
type FaultSpec struct {
	// HostMTTFTicks/HostMTTRTicks enable independent per-host crash and
	// repair processes: times to failure and to repair are exponential
	// draws with these means, one named PCG stream per host. Both must be
	// positive when either is set.
	HostMTTFTicks float64
	HostMTTRTicks float64
	// Outages are correlated DC-scoped failure windows.
	Outages []OutageSpec
	// Maintenance schedules a rolling drain wave over the fleet.
	Maintenance *MaintenanceSpec
	// HorizonTicks bounds event generation (0 = one simulated day).
	HorizonTicks int
	// MaxEvents caps the script length (0 = 4096).
	MaxEvents int
}

// Validate checks the spec against a fleet of dcs datacenters. Error
// messages list the valid options, matching the sweep CLI's unknown-name
// style.
func (f *FaultSpec) Validate(dcs int) error {
	if f.HostMTTFTicks < 0 || f.HostMTTRTicks < 0 {
		return fmt.Errorf("lifecycle: negative host MTTF/MTTR (%g/%g ticks); both must be positive, or zero to disable the crash process",
			f.HostMTTFTicks, f.HostMTTRTicks)
	}
	if (f.HostMTTFTicks > 0) != (f.HostMTTRTicks > 0) {
		return fmt.Errorf("lifecycle: host crash process needs both HostMTTFTicks and HostMTTRTicks > 0 (got %g/%g)",
			f.HostMTTFTicks, f.HostMTTRTicks)
	}
	for i, o := range f.Outages {
		if int(o.DC) < 0 || int(o.DC) >= dcs {
			return fmt.Errorf("lifecycle: outage %d targets unknown DC %d (have 0..%d)", i, int(o.DC), dcs-1)
		}
		if o.StartTick < 0 {
			return fmt.Errorf("lifecycle: outage %d starts at negative tick %d", i, o.StartTick)
		}
		if o.DurationTicks < 1 {
			return fmt.Errorf("lifecycle: outage %d needs DurationTicks >= 1, got %d", i, o.DurationTicks)
		}
	}
	if m := f.Maintenance; m != nil {
		if m.DrainDeadlineTicks < 1 {
			return fmt.Errorf("lifecycle: maintenance drain deadline must be >= 1 tick, got %d", m.DrainDeadlineTicks)
		}
		if m.EveryTicks < 1 {
			return fmt.Errorf("lifecycle: maintenance needs EveryTicks >= 1, got %d", m.EveryTicks)
		}
		if m.OfflineTicks < 1 {
			return fmt.Errorf("lifecycle: maintenance needs OfflineTicks >= 1, got %d", m.OfflineTicks)
		}
		if m.StartTick < 0 {
			return fmt.Errorf("lifecycle: maintenance starts at negative tick %d", m.StartTick)
		}
		if m.MaxHosts < 0 {
			return fmt.Errorf("lifecycle: maintenance has negative MaxHosts %d", m.MaxHosts)
		}
	}
	return nil
}

// GenerateFaults expands a fault spec into its deterministic script for
// the given fleet. Per-host crash/repair times come from one named stream
// per host ("lifecycle/faults/host<id>"), so adding or removing a process
// never perturbs the draws of another host — the same splittability
// contract as the arrival script.
func GenerateFaults(seed uint64, f FaultSpec, pms []model.PMSpec, dcs int) (*FaultScript, error) {
	if err := f.Validate(dcs); err != nil {
		return nil, err
	}
	horizon := f.HorizonTicks
	if horizon <= 0 {
		horizon = model.TicksPerDay
	}
	maxE := f.MaxEvents
	if maxE <= 0 {
		maxE = 4096
	}
	s := &FaultScript{}

	// Independent per-host crash/repair alternation.
	if f.HostMTTFTicks > 0 {
		for _, pm := range pms {
			stream := rng.NewNamed(seed, fmt.Sprintf("lifecycle/faults/host%d", int(pm.ID)))
			t := int(stream.Exp(f.HostMTTFTicks)) + 1
			for t < horizon && len(s.Events) < maxE {
				down := int(stream.Exp(f.HostMTTRTicks)) + 1
				s.Events = append(s.Events,
					FaultEvent{Tick: t, Kind: FaultCrash, PM: pm.ID},
					FaultEvent{Tick: t + down, Kind: FaultRepair, PM: pm.ID})
				t += down + int(stream.Exp(f.HostMTTFTicks)) + 1
			}
		}
	}

	// Rolling maintenance wave, hosts in inventory order.
	if m := f.Maintenance; m != nil {
		covered := len(pms)
		if m.MaxHosts > 0 && m.MaxHosts < covered {
			covered = m.MaxHosts
		}
		for k := 0; k < covered && len(s.Events) < maxE; k++ {
			start := m.StartTick + k*m.EveryTicks
			if start >= horizon {
				break
			}
			pm := pms[k].ID
			s.Events = append(s.Events,
				FaultEvent{Tick: start, Kind: FaultDrainStart, PM: pm},
				FaultEvent{Tick: start + m.DrainDeadlineTicks, Kind: FaultTakedown, PM: pm},
				FaultEvent{Tick: start + m.DrainDeadlineTicks + m.OfflineTicks, Kind: FaultRepair, PM: pm})
		}
	}

	// Correlated DC outages.
	for _, o := range f.Outages {
		if o.StartTick >= horizon || len(s.Events) >= maxE {
			continue
		}
		s.Events = append(s.Events,
			FaultEvent{Tick: o.StartTick, Kind: FaultOutageStart, DC: o.DC},
			FaultEvent{Tick: o.StartTick + o.DurationTicks, Kind: FaultOutageEnd, DC: o.DC})
	}

	// Stable sort: tick order, generation order within a tick.
	sort.SliceStable(s.Events, func(a, b int) bool {
		return s.Events[a].Tick < s.Events[b].Tick
	})
	return s, nil
}
