// Package lifecycle is the dynamic-workload subsystem: it turns a
// declarative arrival process into a deterministic script of VM arrivals
// and departures, and provides the runtime event queue (Runner) that feeds
// the script into a managed simulation — offers awaiting an admission
// decision, a deferral queue, scheduled departures and churn statistics.
//
// The paper evaluates its scheduler on a frozen VM population; this
// package supplies the missing axis — a fleet that churns while the
// simulation runs — so placement policies and the admission controller in
// internal/core can be measured under arrival storms, diurnal sign-up
// ramps and batch-job waves (the submitter/event-queue shape of cluster
// simulators like k8s-cluster-simulator).
//
// Determinism contract: a Script is a pure function of (seed, ProcessSpec)
// — generated entirely at build time from named PCG streams, independent
// of anything that happens during the run. The Runner's queues are plain
// ordered slices popped in (tick, admission order); no map iteration, no
// wall clock. Two runs of the same scenario are therefore bit-identical,
// and sweep parallelism cannot reorder churn.
package lifecycle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Process kinds.
const (
	// Poisson is a homogeneous Poisson arrival stream: independent VM
	// sign-ups at a constant mean rate.
	Poisson = "poisson"
	// Diurnal modulates the Poisson rate with a day curve (peak at 15:00
	// UTC), the sign-up ramp of a consumer-facing platform.
	Diurnal = "diurnal"
	// Waves submits bursts of WaveSize VMs every WaveEvery ticks — batch
	// job waves with finite lifetimes, the arrival-storm stressor.
	Waves = "waves"
)

// DefaultMaxDeferTicks is how long an arrival may sit in the admission
// deferral queue before the controller gives up and rejects it — and the
// padding SlotBound assumes when sizing engine slot capacity.
const DefaultMaxDeferTicks = 30

// ProcessSpec declaratively describes an arrival process. The zero value
// of most knobs means "sensible default"; Generate validates the rest.
type ProcessSpec struct {
	// Kind selects the process: Poisson, Diurnal or Waves.
	Kind string
	// RatePerHour is the mean arrival rate (Poisson) or the diurnal peak
	// rate (Diurnal). Ignored by Waves.
	RatePerHour float64
	// WaveEvery/WaveSize shape the Waves process: WaveSize VMs arrive
	// together every WaveEvery ticks (first wave at WaveEvery).
	WaveEvery int
	WaveSize  int
	// MeanLifetimeTicks is the exponential mean of a VM's lifetime,
	// counted from admission; 0 means arrivals stay forever.
	MeanLifetimeTicks float64
	// MinLifetimeTicks floors every drawn lifetime.
	MinLifetimeTicks int
	// HorizonTicks bounds arrival generation (0 = one simulated day).
	HorizonTicks int
	// MaxArrivals caps the script length (0 = 4096).
	MaxArrivals int
	// LoadScale multiplies arriving VMs' request rates (0 = 1).
	LoadScale float64
	// PriceEURh prices arriving VMs (0 = the paper's 0.17 €/VMh).
	PriceEURh float64
}

// Arrival is one scripted VM: its spec, service class, arrival tick and
// lifetime. IDs are assigned sequentially above the static population so
// they never collide — not even across slot reuse.
type Arrival struct {
	Spec  model.VMSpec
	Class trace.ServiceClass
	// ArriveTick is when the VM is first offered for admission.
	ArriveTick int
	// LifetimeTicks is the VM's service lifetime counted from admission
	// (0 = never departs).
	LifetimeTicks int
	// Offered is the expected peak gateway load — what the admission
	// controller sizes against before any observation of the VM exists.
	Offered model.Load
}

// Script is a generated arrival schedule, sorted by (ArriveTick, ID).
type Script struct {
	Arrivals []Arrival
	// LoadScale echoes the process's request-rate multiplier for the
	// workload generator.
	LoadScale float64
}

// Generate expands a process into its deterministic script. firstID is
// the first free VM ID (the static population size); dcs is how many
// datacenters arrivals may be homed in.
func Generate(seed uint64, p ProcessSpec, firstID model.VMID, dcs int) (*Script, error) {
	switch p.Kind {
	case Poisson, Diurnal:
		if p.RatePerHour <= 0 {
			return nil, fmt.Errorf("lifecycle: %s process needs RatePerHour > 0", p.Kind)
		}
	case Waves:
		if p.WaveEvery <= 0 || p.WaveSize <= 0 {
			return nil, fmt.Errorf("lifecycle: waves process needs WaveEvery and WaveSize > 0")
		}
	default:
		return nil, fmt.Errorf("lifecycle: unknown process kind %q (have %q, %q, %q)",
			p.Kind, Poisson, Diurnal, Waves)
	}
	if dcs <= 0 {
		return nil, fmt.Errorf("lifecycle: need at least one DC, got %d", dcs)
	}
	horizon := p.HorizonTicks
	if horizon <= 0 {
		horizon = model.TicksPerDay
	}
	maxN := p.MaxArrivals
	if maxN <= 0 {
		maxN = 4096
	}
	scale := p.LoadScale
	if scale <= 0 {
		scale = 1
	}
	price := p.PriceEURh
	if price <= 0 {
		price = 0.17
	}

	s := &Script{LoadScale: scale}
	stream := rng.NewNamed(seed, "lifecycle/arrivals")
	id := firstID
	for tick := 0; tick < horizon && len(s.Arrivals) < maxN; tick++ {
		var n int
		switch p.Kind {
		case Poisson:
			n = poissonDraw(stream, p.RatePerHour/float64(model.TicksPerHour))
		case Diurnal:
			lambda := p.RatePerHour / float64(model.TicksPerHour) * diurnalEnvelope(tick)
			n = poissonDraw(stream, lambda)
		case Waves:
			if tick > 0 && tick%p.WaveEvery == 0 {
				n = p.WaveSize
			}
		}
		for k := 0; k < n && len(s.Arrivals) < maxN; k++ {
			class := trace.ClassByIndex(stream.IntN(len(trace.Classes())))
			life := 0
			if p.MeanLifetimeTicks > 0 {
				life = p.MinLifetimeTicks + int(stream.Exp(p.MeanLifetimeTicks))
				if life < 1 {
					life = 1
				}
			}
			s.Arrivals = append(s.Arrivals, Arrival{
				Spec: model.VMSpec{
					ID:          id,
					Name:        fmt.Sprintf("churn%d", int(id)),
					ImageSizeGB: 4,
					BaseMemMB:   256,
					MaxMemMB:    1024,
					Terms:       model.DefaultSLATerms,
					PriceEURh:   price,
					HomeDC:      model.DCID(stream.IntN(dcs)),
				},
				Class:         class,
				ArriveTick:    tick,
				LifetimeTicks: life,
				Offered: model.Load{
					RPS:        class.BaseRPS * scale,
					BytesInReq: class.BytesInReq,
					BytesOutRq: class.BytesOutReq,
					CPUTimeReq: class.CPUTimeReq,
				},
			})
			id++
		}
	}
	return s, nil
}

// VMSpecs returns the spec of every scripted arrival, in schedule order —
// the roster the workload generator is built with so it can serve load
// for any VM the moment it is admitted.
func (s *Script) VMSpecs() []model.VMSpec {
	out := make([]model.VMSpec, len(s.Arrivals))
	for i := range s.Arrivals {
		out[i] = s.Arrivals[i].Spec
	}
	return out
}

// SlotBound returns the engine slot capacity the script needs so that
// admission can never run out of slots: the maximum concurrency of the
// arrival intervals, each padded by padTicks of potential admission
// deferral (a VM admitted late departs late, since lifetimes count from
// admission). Arrivals with infinite lifetimes stay concurrent forever.
func (s *Script) SlotBound(padTicks int) int {
	if padTicks < 0 {
		padTicks = 0
	}
	type ev struct {
		t int
		d int // +1 arrival, -1 departure
	}
	evs := make([]ev, 0, 2*len(s.Arrivals))
	for i := range s.Arrivals {
		a := &s.Arrivals[i]
		evs = append(evs, ev{a.ArriveTick, +1})
		if a.LifetimeTicks > 0 {
			evs = append(evs, ev{a.ArriveTick + padTicks + a.LifetimeTicks, -1})
		}
	}
	// Arrivals before departures at equal ticks: a deliberate overcount,
	// since a slot freed at tick t may not be reusable at t.
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].d > evs[b].d
	})
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.d
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// diurnalEnvelope is the day curve modulating Diurnal arrivals: peak 1 at
// 15:00 UTC, floor 0.1 at night — the same shape as the workload's
// request-rate curve, so sign-ups ride the traffic wave.
func diurnalEnvelope(tick int) float64 {
	hour := math.Mod(float64(tick)/float64(model.TicksPerHour), 24)
	phase := (hour - 15) / 24 * 2 * math.Pi
	base := (math.Cos(phase) + 1) / 2
	return 0.1 + 0.9*base
}

// poissonDraw samples a Poisson count with mean lambda (Knuth's method —
// lambdas here are well below one arrival per tick).
func poissonDraw(s *rng.Stream, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= limit {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}
