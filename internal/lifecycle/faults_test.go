package lifecycle

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func testPMs(n int, dcs int) []model.PMSpec {
	pms := make([]model.PMSpec, n)
	for i := range pms {
		pms[i] = model.PMSpec{ID: model.PMID(i), DC: model.DCID(i % dcs)}
	}
	return pms
}

// TestGenerateFaultsDeterministic pins the script contract: identical
// (seed, spec, fleet) means an identical script; a different seed
// perturbs the crash process.
func TestGenerateFaultsDeterministic(t *testing.T) {
	spec := FaultSpec{
		HostMTTFTicks: 200, HostMTTRTicks: 40,
		Outages:      []OutageSpec{{DC: 1, StartTick: 100, DurationTicks: 50}},
		Maintenance:  &MaintenanceSpec{StartTick: 10, EveryTicks: 30, DrainDeadlineTicks: 20, OfflineTicks: 15, MaxHosts: 2},
		HorizonTicks: 600,
	}
	pms := testPMs(8, 4)
	a, err := GenerateFaults(7, spec, pms, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFaults(7, spec, pms, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, spec) produced different fault scripts")
	}
	c, err := GenerateFaults(8, spec, pms, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault scripts")
	}
	if !sort.SliceIsSorted(a.Events, func(i, j int) bool {
		return a.Events[i].Tick < a.Events[j].Tick
	}) {
		t.Fatal("script events not sorted by tick")
	}
}

// TestGenerateFaultsShapes checks each process produces its advertised
// event pattern.
func TestGenerateFaultsShapes(t *testing.T) {
	t.Run("crash-repair-alternation", func(t *testing.T) {
		s, err := GenerateFaults(3, FaultSpec{
			HostMTTFTicks: 100, HostMTTRTicks: 30, HorizonTicks: 2000,
		}, testPMs(4, 2), 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Events) == 0 {
			t.Fatal("no crash events over 20 MTTFs")
		}
		// Per host: strict crash/repair alternation starting with a crash,
		// repair strictly after its crash.
		byHost := map[model.PMID][]FaultEvent{}
		for _, ev := range s.Events {
			byHost[ev.PM] = append(byHost[ev.PM], ev)
		}
		for pm, evs := range byHost {
			for i, ev := range evs {
				wantKind := FaultCrash
				if i%2 == 1 {
					wantKind = FaultRepair
				}
				if ev.Kind != wantKind {
					t.Fatalf("host %v event %d: kind %v, want %v", pm, i, ev.Kind, wantKind)
				}
				if i > 0 && evs[i].Tick <= evs[i-1].Tick {
					t.Fatalf("host %v: event %d at %d not after %d", pm, i, evs[i].Tick, evs[i-1].Tick)
				}
			}
		}
	})
	t.Run("maintenance-wave", func(t *testing.T) {
		s, err := GenerateFaults(1, FaultSpec{
			Maintenance:  &MaintenanceSpec{StartTick: 50, EveryTicks: 40, DrainDeadlineTicks: 30, OfflineTicks: 20},
			HorizonTicks: 1000,
		}, testPMs(3, 1), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Events) != 9 {
			t.Fatalf("wave over 3 hosts produced %d events, want 9", len(s.Events))
		}
		for k := 0; k < 3; k++ {
			start := 50 + 40*k
			pm := model.PMID(k)
			want := []FaultEvent{
				{Tick: start, Kind: FaultDrainStart, PM: pm},
				{Tick: start + 30, Kind: FaultTakedown, PM: pm},
				{Tick: start + 50, Kind: FaultRepair, PM: pm},
			}
			var got []FaultEvent
			for _, ev := range s.Events {
				if ev.PM == pm {
					got = append(got, ev)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("host %v wave %v, want %v", pm, got, want)
			}
		}
	})
	t.Run("outage-expansion", func(t *testing.T) {
		s, err := GenerateFaults(1, FaultSpec{
			Outages:      []OutageSpec{{DC: 2, StartTick: 30, DurationTicks: 60}},
			HorizonTicks: 200,
		}, testPMs(6, 3), 3)
		if err != nil {
			t.Fatal(err)
		}
		want := []FaultEvent{
			{Tick: 30, Kind: FaultOutageStart, DC: 2},
			{Tick: 90, Kind: FaultOutageEnd, DC: 2},
		}
		if !reflect.DeepEqual(s.Events, want) {
			t.Fatalf("outage events %v, want %v", s.Events, want)
		}
	})
}

// TestFaultSpecValidation pins the option-listing error messages for the
// new failure fields.
func TestFaultSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec FaultSpec
		want string // substring of the error
	}{
		{"negative-mttf", FaultSpec{HostMTTFTicks: -1, HostMTTRTicks: 10}, "negative host MTTF/MTTR"},
		{"negative-mttr", FaultSpec{HostMTTFTicks: 10, HostMTTRTicks: -2}, "negative host MTTF/MTTR"},
		{"mttf-without-mttr", FaultSpec{HostMTTFTicks: 10}, "both HostMTTFTicks and HostMTTRTicks"},
		{"unknown-dc", FaultSpec{Outages: []OutageSpec{{DC: 7, StartTick: 1, DurationTicks: 1}}}, "unknown DC 7 (have 0..3)"},
		{"negative-outage-start", FaultSpec{Outages: []OutageSpec{{DC: 0, StartTick: -5, DurationTicks: 1}}}, "negative tick"},
		{"zero-outage-duration", FaultSpec{Outages: []OutageSpec{{DC: 0, StartTick: 0}}}, "DurationTicks >= 1"},
		{"drain-deadline-zero", FaultSpec{Maintenance: &MaintenanceSpec{EveryTicks: 10, OfflineTicks: 10}}, "drain deadline must be >= 1"},
		{"every-zero", FaultSpec{Maintenance: &MaintenanceSpec{DrainDeadlineTicks: 10, OfflineTicks: 10}}, "EveryTicks >= 1"},
		{"offline-zero", FaultSpec{Maintenance: &MaintenanceSpec{DrainDeadlineTicks: 10, EveryTicks: 10}}, "OfflineTicks >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := GenerateFaults(1, tc.spec, testPMs(4, 4), 4)
			if err == nil {
				t.Fatalf("spec %+v accepted", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The zero spec injects nothing and is valid.
	s, err := GenerateFaults(1, FaultSpec{}, testPMs(2, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 0 {
		t.Fatalf("zero spec produced events: %v", s.Events)
	}
}

// TestFaultRunnerFlow drives the runner by hand through eviction, waiting,
// re-homing and shedding, checking the availability arithmetic.
func TestFaultRunnerFlow(t *testing.T) {
	script := &FaultScript{Events: []FaultEvent{
		{Tick: 5, Kind: FaultCrash, PM: 0},
		{Tick: 40, Kind: FaultRepair, PM: 0},
	}}
	r := NewFaultRunner(script)
	if got := r.Due(4); len(got) != 0 {
		t.Fatalf("events before their tick: %v", got)
	}
	due := r.Due(5)
	if len(due) != 1 || due[0].Kind != FaultCrash {
		t.Fatalf("due at 5: %v", due)
	}
	// Two guests evicted; VM 11 already queued from a previous fault must
	// not double-enqueue.
	r.RecordEvictions(5, []model.VMID{10, 11}, false)
	r.RecordEvictions(5, []model.VMID{11}, true)
	if r.PendingRehomes() != 2 {
		t.Fatalf("queue %d, want 2", r.PendingRehomes())
	}
	// Ticks 5..9: both homeless among 4 live VMs.
	for tick := 5; tick < 10; tick++ {
		r.ObserveTick(tick, 4, false, func(model.VMID) bool { return false })
	}
	// Tick 10: VM 10 re-homed (5 ticks after eviction), VM 11 still out.
	r.ObserveTick(10, 4, true, func(id model.VMID) bool { return id == 10 })
	if r.PendingRehomes() != 1 {
		t.Fatalf("queue after re-home %d, want 1", r.PendingRehomes())
	}
	// VM 11 is shed.
	if !r.Drop(11) {
		t.Fatal("Drop missed the queued VM")
	}
	r.RecordShed()
	st := r.Stats()
	if st.Crashes != 1 || st.Interruptions != 3 || st.ForcedEvictions != 1 {
		t.Fatalf("event counters %+v", st)
	}
	if st.Rehomed != 1 || st.RehomeTicksSum != 5 || st.MaxRehomeTicks != 5 || st.Shed != 1 {
		t.Fatalf("re-home counters %+v", st)
	}
	// Downtime: 2 VMs x ticks 5..9 + 1 VM at tick 10 = 11; VM-ticks 6x4.
	if st.DowntimeTicks != 11 || st.VMTicks != 24 || st.DegradedTicks != 1 {
		t.Fatalf("availability counters %+v", st)
	}
	if want := 1 - float64(st.DowntimeTicks)/float64(st.VMTicks); st.Availability() != want {
		t.Fatalf("availability %v, want %v", st.Availability(), want)
	}
	if st.MeanRehomeTicks() != 5 {
		t.Fatalf("mean re-home %v, want 5", st.MeanRehomeTicks())
	}
	// Nil scripts yield a runner that never fires.
	if got := NewFaultRunner(nil).Due(1000); len(got) != 0 {
		t.Fatalf("nil-script runner fired: %v", got)
	}
}

// TestFaultRunnerQuiescentAllocFree pins the per-tick cost of an enabled
// but idle fault layer: between events, with an empty re-home queue,
// Due + ObserveTick allocate nothing.
func TestFaultRunnerQuiescentAllocFree(t *testing.T) {
	r := NewFaultRunner(&FaultScript{Events: []FaultEvent{
		{Tick: 1 << 30, Kind: FaultCrash, PM: 0}, // far future: never due
	}})
	hosted := func(model.VMID) bool { return true }
	tick := 0
	avg := testing.AllocsPerRun(100, func() {
		tick++
		r.Due(tick)
		r.ObserveTick(tick, 8, false, hosted)
	})
	if avg != 0 {
		t.Fatalf("quiescent fault runner allocates %.1f times per tick, want 0", avg)
	}
}

// TestCancelDeparture pins the eviction/departure interaction: a VM shed
// (retired early) before its departure tick must not resurrect or
// double-count in Stats when the tick comes.
func TestCancelDeparture(t *testing.T) {
	s := &Script{Arrivals: []Arrival{
		{Spec: model.VMSpec{ID: 10}, ArriveTick: 0, LifetimeTicks: 20},
		{Spec: model.VMSpec{ID: 11}, ArriveTick: 0, LifetimeTicks: 20},
	}}
	r := NewRunner(s)
	due := r.Due(0)
	if len(due) != 2 {
		t.Fatalf("due %d, want 2", len(due))
	}
	r.Resolve(0, due[0], Admit, sim.VMHandle{Slot: 1, Gen: 1})
	r.Resolve(0, due[1], Admit, sim.VMHandle{Slot: 2, Gen: 1})

	// VM 10 is evicted by a fault at tick 5, never re-homed, and shed at
	// tick 15 — before its tick-20 departure.
	if !r.CancelDeparture(10) {
		t.Fatal("CancelDeparture missed the scheduled departure")
	}
	if r.CancelDeparture(10) {
		t.Fatal("second CancelDeparture found a departure to cancel")
	}

	// The shed VM must not linger in the placement-wait queue either: an
	// ObservePlacements seeing every VM hosted must count only the
	// survivor.
	r.ObservePlacements(16, func(id model.VMID) bool { return true })
	if st := r.Stats(); st.Placed != 1 {
		t.Fatalf("Placed %d, want 1 (only the surviving VM)", st.Placed)
	}

	deps := r.DeparturesDue(30)
	if len(deps) != 1 || deps[0].ID != 11 {
		t.Fatalf("departures %+v, want only VM 11", deps)
	}
	st := r.Stats()
	if st.Departed != 1 {
		t.Fatalf("Departed %d, want 1 (shed VM must not count)", st.Departed)
	}
	if st.Admitted != 2 {
		t.Fatalf("Admitted %d, want 2 (cancel must not touch admission)", st.Admitted)
	}
}
