package lifecycle

import (
	"repro/internal/obs"
)

// Metrics exports the churn and fault ledgers as monotonic counters.
// Runner and FaultRunner keep cumulative Stats structs on their own hot
// paths; Metrics.Observe diffs them against the last sync and adds the
// deltas, so instrumentation costs one call per tick (a dozen atomic
// adds, no allocation) and the runners themselves stay untouched. All of
// these are deterministic counters — pure functions of the event stream.
type Metrics struct {
	Offered   *obs.Counter
	Admitted  *obs.Counter
	Rejected  *obs.Counter
	Deferrals *obs.Counter
	Departed  *obs.Counter
	Placed    *obs.Counter

	Crashes         *obs.Counter
	Repairs         *obs.Counter
	DrainsStarted   *obs.Counter
	Takedowns       *obs.Counter
	OutageStarts    *obs.Counter
	Interruptions   *obs.Counter
	ForcedEvictions *obs.Counter
	Rehomed         *obs.Counter
	Shed            *obs.Counter
	DowntimeTicks   *obs.Counter
	DegradedTicks   *obs.Counter

	prev  Stats
	prevF FaultStats
}

// NewMetrics registers the lifecycle metric family on a registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Offered:   r.Counter("mdcsim_lifecycle_offered_total", "VMs offered for admission."),
		Admitted:  r.Counter("mdcsim_lifecycle_admitted_total", "VMs admitted."),
		Rejected:  r.Counter("mdcsim_lifecycle_rejected_total", "VMs rejected for good."),
		Deferrals: r.Counter("mdcsim_lifecycle_deferrals_total", "Admission deferrals (one VM may defer many times)."),
		Departed:  r.Counter("mdcsim_lifecycle_departed_total", "VMs retired at end of lifetime."),
		Placed:    r.Counter("mdcsim_lifecycle_placed_total", "Admitted VMs that reached a host."),

		Crashes:         r.Counter("mdcsim_fault_crashes_total", "Host crash events."),
		Repairs:         r.Counter("mdcsim_fault_repairs_total", "Host repair events."),
		DrainsStarted:   r.Counter("mdcsim_fault_drains_started_total", "Maintenance drains started."),
		Takedowns:       r.Counter("mdcsim_fault_takedowns_total", "Drained hosts taken down."),
		OutageStarts:    r.Counter("mdcsim_fault_outage_starts_total", "DC outage events."),
		Interruptions:   r.Counter("mdcsim_fault_interruptions_total", "VM evictions caused by faults."),
		ForcedEvictions: r.Counter("mdcsim_fault_forced_evictions_total", "Evictions forced by drain deadlines."),
		Rehomed:         r.Counter("mdcsim_fault_rehomed_total", "Interrupted VMs placed again."),
		Shed:            r.Counter("mdcsim_fault_shed_total", "Homeless VMs retired by degraded-mode shedding."),
		DowntimeTicks:   r.Counter("mdcsim_fault_downtime_vm_ticks_total", "VM-ticks spent homeless after an interruption."),
		DegradedTicks:   r.Counter("mdcsim_fault_degraded_ticks_total", "Ticks spent in degraded mode."),
	}
}

// Observe syncs the counters to the runners' cumulative ledgers, adding
// only the delta since the previous call. Cumulative stats never
// decrease, so the deltas are non-negative by construction.
func (m *Metrics) Observe(s Stats, fs FaultStats) {
	if m == nil {
		return
	}
	d := func(c *obs.Counter, now, prev int) {
		if now > prev {
			c.Add(uint64(now - prev))
		}
	}
	d(m.Offered, s.Offered, m.prev.Offered)
	d(m.Admitted, s.Admitted, m.prev.Admitted)
	d(m.Rejected, s.Rejected, m.prev.Rejected)
	d(m.Deferrals, s.Deferrals, m.prev.Deferrals)
	d(m.Departed, s.Departed, m.prev.Departed)
	d(m.Placed, s.Placed, m.prev.Placed)
	m.prev = s

	d(m.Crashes, fs.Crashes, m.prevF.Crashes)
	d(m.Repairs, fs.Repairs, m.prevF.Repairs)
	d(m.DrainsStarted, fs.DrainsStarted, m.prevF.DrainsStarted)
	d(m.Takedowns, fs.Takedowns, m.prevF.Takedowns)
	d(m.OutageStarts, fs.OutageStarts, m.prevF.OutageStarts)
	d(m.Interruptions, fs.Interruptions, m.prevF.Interruptions)
	d(m.ForcedEvictions, fs.ForcedEvictions, m.prevF.ForcedEvictions)
	d(m.Rehomed, fs.Rehomed, m.prevF.Rehomed)
	d(m.Shed, fs.Shed, m.prevF.Shed)
	d(m.DowntimeTicks, fs.DowntimeTicks, m.prevF.DowntimeTicks)
	d(m.DegradedTicks, fs.DegradedTicks, m.prevF.DegradedTicks)
	m.prevF = fs
}
