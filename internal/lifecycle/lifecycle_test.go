package lifecycle

import (
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func wavesSpec() ProcessSpec {
	return ProcessSpec{
		Kind: Waves, WaveEvery: 60, WaveSize: 4,
		MeanLifetimeTicks: 50, MinLifetimeTicks: 10,
		HorizonTicks: 300,
	}
}

// TestGenerateDeterministic pins the script contract: same (seed, spec)
// means an identical script; a different seed perturbs it.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(7, wavesSpec(), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7, wavesSpec(), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scripts")
	}
	c, err := Generate(8, wavesSpec(), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}
}

// TestGenerateShapes checks each process kind produces the advertised
// arrival pattern with unique, sequential IDs above the static range.
func TestGenerateShapes(t *testing.T) {
	t.Run("waves", func(t *testing.T) {
		s, err := Generate(1, wavesSpec(), 10, 4)
		if err != nil {
			t.Fatal(err)
		}
		// 300-tick horizon, waves at 60/120/180/240 of 4 VMs each.
		if len(s.Arrivals) != 16 {
			t.Fatalf("waves produced %d arrivals, want 16", len(s.Arrivals))
		}
		for i, a := range s.Arrivals {
			if a.ArriveTick%60 != 0 || a.ArriveTick == 0 {
				t.Fatalf("arrival %d at off-wave tick %d", i, a.ArriveTick)
			}
			if a.LifetimeTicks < 10 {
				t.Fatalf("arrival %d lifetime %d under the floor", i, a.LifetimeTicks)
			}
			if a.Spec.ID != model.VMID(10+i) {
				t.Fatalf("arrival %d has ID %v, want %v", i, a.Spec.ID, model.VMID(10+i))
			}
			if a.Spec.HomeDC < 0 || a.Spec.HomeDC >= 4 {
				t.Fatalf("arrival %d homed outside the topology: %v", i, a.Spec.HomeDC)
			}
			if a.Offered.RPS <= 0 {
				t.Fatalf("arrival %d offers no load", i)
			}
		}
	})
	t.Run("poisson", func(t *testing.T) {
		s, err := Generate(1, ProcessSpec{
			Kind: Poisson, RatePerHour: 10, HorizonTicks: model.TicksPerDay,
		}, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		// ~240 expected over the day; a factor-2 band is generous enough
		// to be draw-stable and still catch rate bugs.
		if n := len(s.Arrivals); n < 120 || n > 480 {
			t.Fatalf("poisson produced %d arrivals for an expected 240", n)
		}
		for _, a := range s.Arrivals {
			if a.LifetimeTicks != 0 {
				t.Fatal("zero MeanLifetimeTicks must mean immortal arrivals")
			}
		}
	})
	t.Run("diurnal", func(t *testing.T) {
		s, err := Generate(1, ProcessSpec{
			Kind: Diurnal, RatePerHour: 12, HorizonTicks: model.TicksPerDay,
		}, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		day, night := 0, 0
		for _, a := range s.Arrivals {
			h := a.ArriveTick / model.TicksPerHour
			if h >= 12 && h < 18 {
				day++
			}
			if h < 6 {
				night++
			}
		}
		if day <= night {
			t.Fatalf("diurnal arrivals flat: %d afternoon vs %d night", day, night)
		}
	})
	t.Run("errors", func(t *testing.T) {
		for _, bad := range []ProcessSpec{
			{Kind: "bogus"},
			{Kind: Poisson},
			{Kind: Waves, WaveEvery: 10},
		} {
			if _, err := Generate(1, bad, 0, 2); err == nil {
				t.Fatalf("spec %+v accepted", bad)
			}
		}
	})
}

// TestSlotBound pins the padded-interval concurrency bound.
func TestSlotBound(t *testing.T) {
	s := &Script{Arrivals: []Arrival{
		{ArriveTick: 0, LifetimeTicks: 10},
		{ArriveTick: 5, LifetimeTicks: 10},
		{ArriveTick: 30, LifetimeTicks: 10},
	}}
	if got := s.SlotBound(0); got != 2 {
		t.Fatalf("unpadded bound %d, want 2", got)
	}
	// A 20-tick deferral pad stretches the first two intervals over the
	// third arrival.
	if got := s.SlotBound(20); got != 3 {
		t.Fatalf("padded bound %d, want 3", got)
	}
	immortal := &Script{Arrivals: []Arrival{
		{ArriveTick: 0}, {ArriveTick: 100}, {ArriveTick: 200},
	}}
	if got := immortal.SlotBound(0); got != 3 {
		t.Fatalf("immortal bound %d, want 3", got)
	}
}

// TestRunnerFlow drives the event queue by hand through offers,
// deferrals, departures and placement accounting.
func TestRunnerFlow(t *testing.T) {
	s := &Script{Arrivals: []Arrival{
		{Spec: model.VMSpec{ID: 10}, ArriveTick: 5, LifetimeTicks: 20},
		{Spec: model.VMSpec{ID: 11}, ArriveTick: 5, LifetimeTicks: 40},
		{Spec: model.VMSpec{ID: 12}, ArriveTick: 8},
	}}
	r := NewRunner(s)
	if got := r.Due(4); len(got) != 0 {
		t.Fatalf("offers before any arrival: %d", len(got))
	}
	due := r.Due(5)
	if len(due) != 2 {
		t.Fatalf("due at 5: %d offers, want 2", len(due))
	}
	// Admit the first, defer the second.
	r.Resolve(5, due[0], Admit, sim.VMHandle{Slot: 3, Gen: 2})
	r.Resolve(5, due[1], Defer, sim.VMHandle{})
	if r.PendingDeferred() != 1 {
		t.Fatalf("deferred queue %d, want 1", r.PendingDeferred())
	}
	// Next tick the deferred offer returns first; admit it now.
	due = r.Due(6)
	if len(due) != 1 || due[0].Arrival.Spec.ID != 11 || due[0].Deferrals != 1 {
		t.Fatalf("deferred offer not re-presented: %+v", due)
	}
	r.Resolve(6, due[0], Admit, sim.VMHandle{Slot: 4, Gen: 1})
	// Third arrival: reject.
	due = r.Due(8)
	if len(due) != 1 || due[0].Arrival.Spec.ID != 12 {
		t.Fatalf("arrival 12 not offered: %+v", due)
	}
	r.Resolve(8, due[0], Reject, sim.VMHandle{})

	// VM 10 reaches a host at the tick-10 round; VM 11 never does.
	r.ObservePlacements(10, func(id model.VMID) bool { return id == 10 })
	// Departures: VM 10 admitted at 5 + 20 = 25; VM 11 at 6 + 40 = 46.
	if deps := r.DeparturesDue(24); len(deps) != 0 {
		t.Fatalf("early departures: %+v", deps)
	}
	deps := r.DeparturesDue(46)
	if len(deps) != 2 || deps[0].ID != 10 || deps[1].ID != 11 {
		t.Fatalf("departures out of order: %+v", deps)
	}
	if deps[0].Handle != (sim.VMHandle{Slot: 3, Gen: 2}) {
		t.Fatalf("departure lost its handle: %+v", deps[0])
	}

	st := r.Stats()
	want := Stats{
		Offered: 3, Admitted: 2, Rejected: 1, Deferrals: 1, Departed: 2,
		Placed: 1, PlacementTicks: 5,
	}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if st.AdmissionRate() != 2.0/3.0 {
		t.Fatalf("admission rate %v", st.AdmissionRate())
	}
	if st.MeanPlacementTicks() != 5 {
		t.Fatalf("mean placement ticks %v", st.MeanPlacementTicks())
	}
}
