package lifecycle

// FaultRunner replays a FaultScript into a managed run and keeps the
// availability ledger: which VMs are waiting to be re-homed after an
// eviction, how long each waited, and the fleet-wide downtime fraction.
// Like Runner it is deterministic and allocation-light: the due-event and
// re-home queues are reused slices, and a quiescent tick (no due events,
// empty queue) does no allocation.

import "repro/internal/model"

// FaultStats aggregates fault-layer outcomes over a run.
type FaultStats struct {
	// Event counts, by kind.
	Crashes       int
	Repairs       int
	DrainsStarted int
	Takedowns     int
	OutageStarts  int

	// Interruptions is the number of VM evictions caused by faults
	// (a VM interrupted twice counts twice). ForcedEvictions is the
	// subset evicted by a drain deadline expiring with guests aboard.
	Interruptions   int
	ForcedEvictions int

	// Re-home outcomes: how many interrupted VMs were placed again, the
	// summed and worst-case latency in ticks from eviction to re-placement,
	// and how many were shed (retired while homeless in degraded mode).
	Rehomed        int
	RehomeTicksSum int
	MaxRehomeTicks int
	Shed           int

	// DowntimeTicks counts VM-ticks spent homeless after an interruption;
	// VMTicks counts active VM-ticks overall, so Availability() is the
	// fraction of VM-time actually served. DegradedTicks counts ticks the
	// manager spent in degraded mode (committed load over surviving
	// capacity).
	DowntimeTicks int
	VMTicks       int
	DegradedTicks int
}

// Availability is served VM-time over total VM-time: 1 - downtime/total.
// A run with no VM-ticks is vacuously fully available.
func (s FaultStats) Availability() float64 {
	if s.VMTicks <= 0 {
		return 1
	}
	return 1 - float64(s.DowntimeTicks)/float64(s.VMTicks)
}

// MeanRehomeTicks is the average eviction-to-replacement latency over
// re-homed VMs (0 when none were re-homed).
func (s FaultStats) MeanRehomeTicks() float64 {
	if s.Rehomed == 0 {
		return 0
	}
	return float64(s.RehomeTicksSum) / float64(s.Rehomed)
}

// rehome tracks one evicted VM awaiting re-placement.
type rehome struct {
	id        model.VMID
	evictTick int
}

// FaultRunner walks a FaultScript and accounts for its consequences.
type FaultRunner struct {
	script *FaultScript
	next   int

	due   []FaultEvent // reused buffer returned by Due
	queue []rehome     // evicted VMs awaiting re-home, eviction order

	// pushed holds externally injected fault events (serve mode: faults
	// reported over the wire instead of scripted), in push order; Due
	// drains the due ones after the script's.
	pushed []FaultEvent

	stats FaultStats
}

// NewFaultRunner wraps a generated script. A nil script yields a runner
// that never fires (useful for uniform wiring).
func NewFaultRunner(script *FaultScript) *FaultRunner {
	if script == nil {
		script = &FaultScript{}
	}
	return &FaultRunner{script: script}
}

// Due returns the events scheduled at or before tick — script events in
// script order, then injected events in push order — advancing both
// cursors. The returned slice is reused by the next call.
func (r *FaultRunner) Due(tick int) []FaultEvent {
	r.due = r.due[:0]
	for r.next < len(r.script.Events) && r.script.Events[r.next].Tick <= tick {
		ev := r.script.Events[r.next]
		r.next++
		r.countEvent(ev)
		r.due = append(r.due, ev)
	}
	kept := r.pushed[:0]
	for _, ev := range r.pushed {
		if ev.Tick <= tick {
			r.countEvent(ev)
			r.due = append(r.due, ev)
		} else {
			kept = append(kept, ev)
		}
	}
	r.pushed = kept
	return r.due
}

// countEvent folds one due event into the per-kind counters.
func (r *FaultRunner) countEvent(ev FaultEvent) {
	switch ev.Kind {
	case FaultCrash:
		r.stats.Crashes++
	case FaultRepair:
		r.stats.Repairs++
	case FaultDrainStart:
		r.stats.DrainsStarted++
	case FaultTakedown:
		r.stats.Takedowns++
	case FaultOutageStart:
		r.stats.OutageStarts++
	}
}

// Push injects one externally reported fault event outside the script —
// the serve-mode intake path. The event fires at the first Due call whose
// tick reaches ev.Tick, after any script events due that tick. Pushes
// must happen in a deterministic order for runs to stay bit-identical.
func (r *FaultRunner) Push(ev FaultEvent) {
	r.pushed = append(r.pushed, ev)
}

// RecordEvictions enqueues VMs evicted by a fault at tick for re-home
// accounting. forced marks drain-deadline evictions. VMs already queued
// (evicted again before ever being re-homed) are not double-enqueued.
func (r *FaultRunner) RecordEvictions(tick int, ids []model.VMID, forced bool) {
	for _, id := range ids {
		r.stats.Interruptions++
		if forced {
			r.stats.ForcedEvictions++
		}
		if r.queued(id) {
			continue
		}
		r.queue = append(r.queue, rehome{id: id, evictTick: tick})
	}
}

func (r *FaultRunner) queued(id model.VMID) bool {
	for _, q := range r.queue {
		if q.id == id {
			return true
		}
	}
	return false
}

// Drop removes a queued VM without counting a re-home — for VMs that
// depart or are shed while homeless. Reports whether it was queued.
func (r *FaultRunner) Drop(id model.VMID) bool {
	for i, q := range r.queue {
		if q.id == id {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			return true
		}
	}
	return false
}

// RecordShed counts a homeless VM retired by degraded-mode shedding.
// Callers pair it with Drop (or a departure) so the queue entry goes away.
func (r *FaultRunner) RecordShed() { r.stats.Shed++ }

// ObserveTick closes out one tick: live is the number of active VMs,
// degraded whether the manager is in degraded mode, and hosted reports
// whether a VM currently has a host. Queued VMs found hosted are counted
// as re-homed with their latency; the rest accrue a downtime tick.
func (r *FaultRunner) ObserveTick(tick, live int, degraded bool, hosted func(model.VMID) bool) {
	r.stats.VMTicks += live
	if degraded {
		r.stats.DegradedTicks++
	}
	kept := r.queue[:0]
	for _, q := range r.queue {
		if hosted(q.id) {
			lat := tick - q.evictTick
			r.stats.Rehomed++
			r.stats.RehomeTicksSum += lat
			if lat > r.stats.MaxRehomeTicks {
				r.stats.MaxRehomeTicks = lat
			}
			continue
		}
		r.stats.DowntimeTicks++
		kept = append(kept, q)
	}
	r.queue = kept
}

// PendingRehomes is the number of evicted VMs still awaiting a host.
func (r *FaultRunner) PendingRehomes() int { return len(r.queue) }

// Stats returns the accumulated fault/availability counters.
func (r *FaultRunner) Stats() FaultStats { return r.stats }
