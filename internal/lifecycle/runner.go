package lifecycle

import (
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
)

// Decision is the admission controller's verdict on one offered VM.
type Decision int

const (
	// Admit brings the VM into the world now.
	Admit Decision = iota
	// Defer keeps the VM in the deferral queue for a later retry
	// (capacity may free up as other VMs depart or load falls).
	Defer
	// Reject turns the VM away for good.
	Reject
)

// Offer is one VM awaiting an admission decision.
type Offer struct {
	Arrival *Arrival
	// Deferrals counts how many times this offer has been deferred.
	Deferrals int
}

// Departure is one scheduled VM retirement, due now.
type Departure struct {
	ID     model.VMID
	Handle sim.VMHandle
}

// Stats summarises a run's churn. All counters are cumulative.
type Stats struct {
	// Offered counts distinct VMs presented for admission.
	Offered int
	// Admitted/Rejected partition the resolved offers; Deferrals counts
	// defer decisions (one VM may defer many times before resolving).
	Admitted  int
	Rejected  int
	Deferrals int
	// Departed counts VMs retired at end of lifetime.
	Departed int
	// Placed counts admitted VMs that reached a host; PlacementTicks sums
	// their admission-to-first-host waits.
	Placed         int
	PlacementTicks int
}

// AdmissionRate is the fraction of offered VMs admitted (vacuously 1
// while nothing has been offered).
func (s Stats) AdmissionRate() float64 {
	if s.Offered == 0 {
		return 1
	}
	return float64(s.Admitted) / float64(s.Offered)
}

// MeanPlacementTicks is the mean admission-to-first-host wait of placed
// VMs (0 while none placed).
func (s Stats) MeanPlacementTicks() float64 {
	if s.Placed == 0 {
		return 0
	}
	return float64(s.PlacementTicks) / float64(s.Placed)
}

// Runner is the runtime event queue of one managed run: it walks the
// script's arrivals, keeps the deferral queue, schedules departures at
// admission time (lifetimes count from admission, which the script cannot
// know), and tracks time-to-placement. All queues are ordered slices; a
// Runner is single-goroutine, like the manager that owns it.
type Runner struct {
	// OnResolve, when set, observes every admission resolution the moment
	// it is recorded — the serve layer uses it to expose per-VM decisions
	// without a second bookkeeping path. It runs on the owning goroutine;
	// it must not call back into the Runner.
	OnResolve func(tick int, a *Arrival, d Decision)

	script   *Script
	next     int
	deferred []*Offer
	offers   []*Offer // reusable Due result
	deps     []departure
	depsDue  []Departure // reusable DeparturesDue result
	seq      int
	waiting  []placeWait
	stats    Stats
	// pushed holds externally injected arrivals (serve mode: VM offers
	// arriving over the wire instead of from the pre-generated script),
	// in push order. Due drains the ones whose tick has come after the
	// script's, so scripted and pushed workloads compose deterministically
	// as long as pushes happen in a deterministic order.
	pushed []*Offer
}

type departure struct {
	tick   int
	seq    int // admission order, the tie-break at equal ticks
	id     model.VMID
	handle sim.VMHandle
}

type placeWait struct {
	id        model.VMID
	admitTick int
}

// NewRunner builds a runner over a script. The script is read-only and
// may be shared; every Runner keeps its own cursors and queues.
func NewRunner(script *Script) *Runner {
	return &Runner{script: script}
}

// Script returns the script the runner walks.
func (r *Runner) Script() *Script { return r.script }

// Stats returns the churn counters so far.
func (r *Runner) Stats() Stats { return r.stats }

// PendingDeferred returns how many VMs currently sit in the deferral
// queue.
func (r *Runner) PendingDeferred() int { return len(r.deferred) }

// PendingPushed returns how many injected arrivals have not been offered
// yet (their ArriveTick has not come, or Due has not run since the push).
func (r *Runner) PendingPushed() int { return len(r.pushed) }

// Push injects one externally arriving VM into the runner outside the
// pre-generated script — the serve-mode intake path, where offers arrive
// over the wire. The arrival is offered for admission at the first Due
// call whose tick reaches a.ArriveTick, after deferred retries and
// scripted arrivals. Pushes must happen in a deterministic order (the
// serve layer sorts each tick's intake batch canonically) for runs to
// stay bit-identical. The arrival is counted in Stats.Offered when it is
// first offered, exactly like a scripted one.
func (r *Runner) Push(a Arrival) {
	ac := a
	r.pushed = append(r.pushed, &Offer{Arrival: &ac})
}

// Due returns the offers awaiting an admission decision at tick:
// previously deferred VMs first (oldest arrivals retry before fresh
// ones), then new arrivals whose tick has come. Every returned offer must
// be resolved via Resolve before the next Due call; the slice is reused.
func (r *Runner) Due(tick int) []*Offer {
	r.offers = r.offers[:0]
	r.offers = append(r.offers, r.deferred...)
	r.deferred = r.deferred[:0]
	for r.next < len(r.script.Arrivals) && r.script.Arrivals[r.next].ArriveTick <= tick {
		a := &r.script.Arrivals[r.next]
		r.next++
		r.stats.Offered++
		r.offers = append(r.offers, &Offer{Arrival: a})
	}
	// Injected arrivals whose tick has come, in push order. The queue is
	// compacted in place so not-yet-due pushes keep their order.
	kept := r.pushed[:0]
	for _, o := range r.pushed {
		if o.Arrival.ArriveTick <= tick {
			r.stats.Offered++
			r.offers = append(r.offers, o)
		} else {
			kept = append(kept, o)
		}
	}
	r.pushed = kept
	return r.offers
}

// Resolve records the admission decision for an offer returned by Due.
// On Admit, h must be the engine handle of the admitted VM: the runner
// schedules the departure (admission tick + lifetime) and starts the
// time-to-placement clock.
func (r *Runner) Resolve(tick int, o *Offer, d Decision, h sim.VMHandle) {
	switch d {
	case Admit:
		r.stats.Admitted++
		a := o.Arrival
		if a.LifetimeTicks > 0 {
			r.deps = append(r.deps, departure{
				tick: tick + a.LifetimeTicks, seq: r.seq, id: a.Spec.ID, handle: h,
			})
			r.seq++
		}
		r.waiting = append(r.waiting, placeWait{id: a.Spec.ID, admitTick: tick})
	case Defer:
		o.Deferrals++
		r.stats.Deferrals++
		r.deferred = append(r.deferred, o)
	case Reject:
		r.stats.Rejected++
	}
	if r.OnResolve != nil {
		r.OnResolve(tick, o.Arrival, d)
	}
}

// DeparturesDue pops the departures scheduled at or before tick, in
// deterministic (departure tick, admission order) order. The returned
// slice is reused across calls. The caller retires each VM through the
// engine; a VM that was never placed still departs (it was live, serving
// nothing).
func (r *Runner) DeparturesDue(tick int) []Departure {
	// deps is append-ordered by admission; collect the due entries and
	// order them by (departure tick, admission order) so retires happen
	// in a stable, meaningful order.
	var due []departure
	kept := r.deps[:0]
	for _, d := range r.deps {
		if d.tick <= tick {
			due = append(due, d)
		} else {
			kept = append(kept, d)
		}
	}
	r.deps = kept
	sort.Slice(due, func(a, b int) bool {
		if due[a].tick != due[b].tick {
			return due[a].tick < due[b].tick
		}
		return due[a].seq < due[b].seq
	})
	r.depsDue = r.depsDue[:0]
	for _, d := range due {
		r.depsDue = append(r.depsDue, Departure{ID: d.id, Handle: d.handle})
		r.stats.Departed++
		r.dropWaiting(d.id)
	}
	return r.depsDue
}

// CancelDeparture forgets a scheduled departure and any pending placement
// wait for a VM that left the world outside the normal lifetime path —
// shed in degraded mode after a fault eviction, for example. The VM is
// neither resurrected by its departure tick nor counted in Departed;
// admission counters are untouched (it really was admitted). Reports
// whether a departure was scheduled.
func (r *Runner) CancelDeparture(id model.VMID) bool {
	r.dropWaiting(id)
	for i := range r.deps {
		if r.deps[i].id == id {
			r.deps = append(r.deps[:i], r.deps[i+1:]...)
			return true
		}
	}
	return false
}

// dropWaiting forgets a placement wait (the VM departed unplaced).
func (r *Runner) dropWaiting(id model.VMID) {
	for i := range r.waiting {
		if r.waiting[i].id == id {
			r.waiting = append(r.waiting[:i], r.waiting[i+1:]...)
			return
		}
	}
}

// ObservePlacements folds the outcome of a scheduling round into the
// time-to-placement statistics: hosted reports whether a VM currently has
// a host. Call it after a round's placement has been applied.
func (r *Runner) ObservePlacements(tick int, hosted func(model.VMID) bool) {
	kept := r.waiting[:0]
	for _, w := range r.waiting {
		if hosted(w.id) {
			r.stats.Placed++
			r.stats.PlacementTicks += tick - w.admitTick
		} else {
			kept = append(kept, w)
		}
	}
	r.waiting = kept
}
