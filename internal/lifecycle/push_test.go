package lifecycle

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// TestRunnerPush proves injected arrivals flow through Due exactly like
// scripted ones: not offered before their tick, offered in push order
// after scripted arrivals, counted in Offered, and departures scheduled
// from the admission tick.
func TestRunnerPush(t *testing.T) {
	script := &Script{Arrivals: []Arrival{{
		Spec: model.VMSpec{ID: 100, Name: "scripted"}, ArriveTick: 5,
	}}}
	r := NewRunner(script)
	r.Push(Arrival{Spec: model.VMSpec{ID: 200, Name: "pushed-late"}, ArriveTick: 6, LifetimeTicks: 10})
	r.Push(Arrival{Spec: model.VMSpec{ID: 201, Name: "pushed-now"}, ArriveTick: 5})
	if got := r.PendingPushed(); got != 2 {
		t.Fatalf("PendingPushed = %d, want 2", got)
	}

	if due := r.Due(4); len(due) != 0 {
		t.Fatalf("tick 4: %d offers due, want 0", len(due))
	}
	due := r.Due(5)
	if len(due) != 2 {
		t.Fatalf("tick 5: %d offers due, want 2 (scripted + pushed-now)", len(due))
	}
	if due[0].Arrival.Spec.ID != 100 || due[1].Arrival.Spec.ID != 201 {
		t.Fatalf("tick 5 order = [%v %v], want scripted first then push order",
			due[0].Arrival.Spec.ID, due[1].Arrival.Spec.ID)
	}
	r.Resolve(5, due[0], Admit, sim.VMHandle{})
	r.Resolve(5, due[1], Reject, sim.VMHandle{})

	due = r.Due(6)
	if len(due) != 1 || due[0].Arrival.Spec.ID != 200 {
		t.Fatalf("tick 6: due = %v, want the deferred-to-tick-6 push", due)
	}
	r.Resolve(6, due[0], Admit, sim.VMHandle{})
	if r.PendingPushed() != 0 {
		t.Fatalf("PendingPushed = %d after all pushes offered, want 0", r.PendingPushed())
	}

	st := r.Stats()
	if st.Offered != 3 || st.Admitted != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want offered 3 admitted 2 rejected 1", st)
	}
	// The admitted push's departure is scheduled from its admission tick.
	if deps := r.DeparturesDue(15); len(deps) != 0 {
		t.Fatalf("departures at 15: %v, want none (due at 16)", deps)
	}
	deps := r.DeparturesDue(16)
	if len(deps) != 1 || deps[0].ID != 200 {
		t.Fatalf("departures at 16 = %v, want vm200", deps)
	}
}

// TestRunnerPushDeferral proves a pushed arrival that the controller
// defers retries ahead of fresh arrivals, like any deferred offer.
func TestRunnerPushDeferral(t *testing.T) {
	r := NewRunner(&Script{})
	r.Push(Arrival{Spec: model.VMSpec{ID: 1}, ArriveTick: 0})
	r.Push(Arrival{Spec: model.VMSpec{ID: 2}, ArriveTick: 1})
	due := r.Due(0)
	if len(due) != 1 {
		t.Fatalf("tick 0: %d due, want 1", len(due))
	}
	r.Resolve(0, due[0], Defer, sim.VMHandle{})
	due = r.Due(1)
	if len(due) != 2 || due[0].Arrival.Spec.ID != 1 || due[1].Arrival.Spec.ID != 2 {
		t.Fatalf("tick 1: deferred push must retry before the fresh push, got %v", due)
	}
	if due[0].Deferrals != 1 {
		t.Fatalf("deferred push Deferrals = %d, want 1", due[0].Deferrals)
	}
}

// TestFaultRunnerPush proves injected fault events fire at their tick,
// after script events, and count in the per-kind stats.
func TestFaultRunnerPush(t *testing.T) {
	script := &FaultScript{Events: []FaultEvent{{Tick: 3, Kind: FaultCrash, PM: 0}}}
	r := NewFaultRunner(script)
	r.Push(FaultEvent{Tick: 3, Kind: FaultDrainStart, PM: 1})
	r.Push(FaultEvent{Tick: 7, Kind: FaultRepair, PM: 0})

	if due := r.Due(2); len(due) != 0 {
		t.Fatalf("tick 2: %d events due, want 0", len(due))
	}
	due := r.Due(3)
	if len(due) != 2 || due[0].Kind != FaultCrash || due[1].Kind != FaultDrainStart {
		t.Fatalf("tick 3: due = %v, want script crash then pushed drain", due)
	}
	due = r.Due(7)
	if len(due) != 1 || due[0].Kind != FaultRepair {
		t.Fatalf("tick 7: due = %v, want the pushed repair", due)
	}
	st := r.Stats()
	if st.Crashes != 1 || st.DrainsStarted != 1 || st.Repairs != 1 {
		t.Fatalf("stats = %+v, want one crash, one drain, one repair", st)
	}
}
