package repro

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lifecycle"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
)

// benchSeed keeps every benchmark on the same deterministic world.
const benchSeed = 42

// printOnce renders each experiment's tables a single time per process so
// `go test -bench .` doubles as the reproduction report.
var printOnce sync.Map

func runExperiment(b *testing.B, name string, metricKeys ...string) {
	b.Helper()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(name, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(name, true); !done {
		fmt.Print(res.Render())
	}
	for _, k := range metricKeys {
		if v, ok := res.Metrics[k]; ok {
			// testing.B forbids whitespace in metric units.
			b.ReportMetric(v, strings.ReplaceAll(k, " ", "_"))
		}
	}
}

// BenchmarkTableI regenerates Table I: harvest monitored data, train the
// seven predictors, validate on the 66/34 split.
func BenchmarkTableI(b *testing.B) {
	runExperiment(b, "table1", "corr:VM CPU", "corr:VM MEM", "corr:VM SLA")
}

// BenchmarkFigure4IntraDC regenerates Figure 4: BF vs BF-OB vs BF+ML on
// one DC for 24 simulated hours.
func BenchmarkFigure4IntraDC(b *testing.B) {
	runExperiment(b, "fig4", "sla:BF", "sla:BF-OB", "sla:BF+ML", "watts:BF+ML")
}

// BenchmarkFigure5FollowLoad regenerates Figure 5: the follow-the-load
// placement of a single VM over 48 hours.
func BenchmarkFigure5FollowLoad(b *testing.B) {
	runExperiment(b, "fig5", "colocatedFrac", "moves")
}

// BenchmarkDelocation regenerates the §V-C de-location benefit check.
func BenchmarkDelocation(b *testing.B) {
	runExperiment(b, "delocation", "slaStatic", "slaDynamic", "benefitPerVMd")
}

// BenchmarkFigure6InterDC regenerates Figure 6: the full inter-DC run with
// the minute-70..90 flash crowd.
func BenchmarkFigure6InterDC(b *testing.B) {
	runExperiment(b, "fig6", "avgSLA", "migrations", "slaCrowd", "slaCalm")
}

// BenchmarkFigure7StaticVsDynamic regenerates Figure 7 and Table III:
// static-global vs dynamic multi-DC management.
func BenchmarkFigure7StaticVsDynamic(b *testing.B) {
	runExperiment(b, "fig7", "watts:static", "watts:dynamic", "sla:static", "sla:dynamic", "energySaving")
}

// BenchmarkFigure8Tradeoff regenerates Figure 8: the SLA/energy/load
// characteristic surface.
func BenchmarkFigure8Tradeoff(b *testing.B) {
	runExperiment(b, "fig8", "wattsForSLA95@40rps", "wattsForSLA95@120rps")
}

// BenchmarkSchedulerScaling regenerates the §IV-C heuristic-vs-exact
// comparison (the GUROBI blow-up).
func BenchmarkSchedulerScaling(b *testing.B) {
	runExperiment(b, "scaling", "nodes:8x6", "bnbNodes:8x6")
}

// BenchmarkGreenEnergy regenerates the green-energy (follow-the-sun)
// extension of the paper's future work.
func BenchmarkGreenEnergy(b *testing.B) {
	runExperiment(b, "green", "energyCut", "sla:dynamic")
}

// BenchmarkOnlineLearning regenerates the online-retraining extension
// (future-work item 4): adapting to a silent software update.
func BenchmarkOnlineLearning(b *testing.B) {
	runExperiment(b, "online", "slaPost:frozen", "slaPost:online", "retrains")
}

// BenchmarkHeuristics regenerates the classical-heuristics comparison
// (Round-Robin / First-Fit / Worst-Fit vs profit-driven Best-Fit).
func BenchmarkHeuristics(b *testing.B) {
	runExperiment(b, "heuristics", "profit:BestFit+ML", "profit:RoundRobin")
}

// BenchmarkHierarchy regenerates the two-layer vs flat scheduling ablation
// (the paper's structural contribution measured directly).
func BenchmarkHierarchy(b *testing.B) {
	runExperiment(b, "hierarchy", "flatMs:192", "hierMs:192")
}

// ---------------------------------------------------------------------------
// Ablation and substrate micro-benchmarks.

func harvestForBench(b *testing.B) *predict.Harvest {
	b.Helper()
	opts := predict.DefaultHarvestOpts(benchSeed)
	opts.Ticks = 400
	h, err := predict.Collect(opts)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkM5PSmoothing is the quality/cost ablation for Quinlan smoothing:
// it reports validation MAE with and without the along-path blend.
func BenchmarkM5PSmoothing(b *testing.B) {
	h := harvestForBench(b)
	train, test := h.VMRT.Split(0.66, rng.New(benchSeed, 5))
	for _, mode := range []struct {
		name   string
		smooth bool
	}{{"on", true}, {"off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := ml.DefaultM5PConfig(4)
			cfg.Smoothing = mode.smooth
			var mae float64
			for i := 0; i < b.N; i++ {
				m, err := ml.TrainM5P(train, cfg)
				if err != nil {
					b.Fatal(err)
				}
				mae = ml.Evaluate(m, test).MAE
			}
			b.ReportMetric(mae, "val-MAE")
		})
	}
}

// BenchmarkM5PTrain measures model-tree training on a harvested dataset.
func BenchmarkM5PTrain(b *testing.B) {
	h := harvestForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainM5P(h.VMRT, ml.DefaultM5PConfig(4)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(h.VMRT.Len()), "rows")
}

// BenchmarkM5PPredict measures single-row inference on a trained tree.
func BenchmarkM5PPredict(b *testing.B) {
	h := harvestForBench(b)
	m, err := ml.TrainM5P(h.VMRT, ml.DefaultM5PConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	row := h.VMRT.X[len(h.VMRT.X)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(row)
	}
}

// BenchmarkKNN compares the kd-tree index against the brute-force scan —
// the ablation for the k-NN acceleration structure.
func BenchmarkKNN(b *testing.B) {
	h := harvestForBench(b)
	for _, cfg := range []struct {
		name string
		knn  ml.KNNConfig
	}{
		{"kdtree", ml.KNNConfig{K: 4, UseKDTree: true, DistanceWeight: true}},
		{"brute", ml.KNNConfig{K: 4, UseKDTree: false, DistanceWeight: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			k, err := ml.TrainKNN(h.VMSLA, cfg.knn)
			if err != nil {
				b.Fatal(err)
			}
			row := h.VMSLA.X[len(h.VMSLA.X)/3]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = k.Predict(row)
			}
		})
	}
}

// BenchmarkLinearTrain measures QR least squares on harvested data.
func BenchmarkLinearTrain(b *testing.B) {
	h := harvestForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainLinear(h.VMCPU, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimStep measures one world tick of the standard 4-DC scenario
// through the map-shaped World adapter.
func BenchmarkSimStep(b *testing.B) {
	sc, err := scenario.Build(scenario.Spec{
		Name: "bench", Seed: benchSeed,
		DCs: 4, PMsPerDC: 2, VMs: 5, LoadScale: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.World.Step()
	}
}

// BenchmarkEngineTick measures the allocation-free engine tick directly,
// on a small (paper-sized) and a large (production-sized) fleet, plus the
// hyperscale preset (20000 VMs over 5100 PMs in six DCs), whose tick runs
// the per-DC resolution shards in parallel (TickWorkers 4) — the sharded
// path pays a handful of goroutine-spawn allocations per tick, unlike the
// serial ticks above.
func BenchmarkEngineTick(b *testing.B) {
	for _, size := range []struct {
		name               string
		vms, pmsPerDC, dcs int
	}{
		{"small-5vm-8pm", 5, 2, 4},
		{"large-200vm-80pm", 200, 20, 4},
	} {
		b.Run(size.name, func(b *testing.B) {
			sc, err := scenario.Build(scenario.Spec{
				Name: "bench-engine", Seed: benchSeed,
				DCs: size.dcs, PMsPerDC: size.pmsPerDC, VMs: size.vms,
				LoadScale: 1.5,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
				b.Fatal(err)
			}
			eng := sc.World.Engine
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
	b.Run("Hyperscale", func(b *testing.B) {
		sc, err := scenario.Build(scenario.MustPreset(scenario.HyperscaleFleet, benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
			b.Fatal(err)
		}
		eng := sc.World.Engine
		// Warm-up ticks: monitor/report buffers grow lazily over the first
		// few ticks, and allocs/op must reflect the steady state benchgate
		// compares against (the remaining per-tick allocations are the
		// sharded phase's goroutine spawns).
		for i := 0; i < 3; i++ {
			eng.Step()
		}
		b.ReportMetric(float64(eng.TickWorkers()), "workers")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Step()
		}
	})
}

// BenchmarkBestFitRound measures one full scheduling decision, serial vs
// parallel candidate evaluation (the hpc ablation).
func BenchmarkBestFitRound(b *testing.B) {
	problem := syntheticProblem(24, 16)
	cost := sched.NewCostModel(network.PaperTopology(), power.Atom{}, 1.0/6)
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"serial", false}, {"parallel", true}} {
		b.Run(mode.name, func(b *testing.B) {
			bf := sched.NewBestFit(cost, sched.NewObserved())
			bf.Parallel = mode.parallel
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bf.Schedule(problem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleRound measures one full scheduling round (the paper's
// 10-minute decision, Algorithm 1 with the ML estimator) at paper size,
// at production-fleet size, and at the next size class up (the xlarge
// preset: 1000 VMs over 402 hosts in six DCs, scheduled as one flat
// problem). This is the decision-maker hot path the allocation-free Round
// refactor and the flat ML inference layouts target; AllocsPerRun
// coverage lives in sched_alloc_test.go.
func BenchmarkScheduleRound(b *testing.B) {
	bundle, err := experiments.TrainedBundle(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	paperCost := sched.NewCostModel(network.PaperTopology(), power.Atom{}, 1.0/6)
	for _, size := range []struct {
		name   string
		setup  func(b *testing.B) (*sched.Problem, sched.CostModel)
		prune  bool
		pruneK int
	}{
		{name: "Small", setup: func(b *testing.B) (*sched.Problem, sched.CostModel) {
			return syntheticProblem(24, 16), paperCost
		}},
		{name: "Large", setup: func(b *testing.B) (*sched.Problem, sched.CostModel) {
			return syntheticProblem(200, 80), paperCost
		}},
		{name: "XLarge", setup: func(b *testing.B) (*sched.Problem, sched.CostModel) {
			return scenarioProblem(b, scenario.XLargeFleet)
		}},
		// Hyperscale is the sharded-fleet round: 20000 VMs over 5100 hosts
		// in six DCs. An exhaustive scan is ~100M profit calls per round, so
		// this size runs the candidate shortlist with a bounded per-DC
		// window — the configuration the preset is meant to be driven with.
		{name: "Hyperscale", setup: func(b *testing.B) (*sched.Problem, sched.CostModel) {
			return scenarioProblem(b, scenario.HyperscaleFleet)
		}, prune: true, pruneK: 32},
	} {
		b.Run(size.name, func(b *testing.B) {
			problem, cost := size.setup(b)
			bf := sched.NewBestFit(cost, sched.NewML(bundle))
			bf.Prune, bf.PruneK = size.prune, size.pruneK
			// One warmup round so the reusable Round session is grown
			// before measurement: allocs/op is then the steady state the
			// benchgate CI job compares against BENCH_sched.json, stable
			// even at low -benchtime iteration counts.
			if _, err := bf.Schedule(problem); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bf.Schedule(problem); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// scenarioProblem builds a realistic mid-run scheduling problem from a
// scenario preset: home placement, a dozen ticks of monitored history,
// then the manager's own problem assembly — the same recipe as the parity
// suite's preset problems, reused here to drive the xlarge fleet.
func scenarioProblem(b *testing.B, name string) (*sched.Problem, sched.CostModel) {
	b.Helper()
	sc, err := scenario.Build(scenario.MustPreset(name, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		b.Fatal(err)
	}
	mgr, err := core.NewManager(core.ManagerConfig{
		World:     sc.World,
		Scheduler: &sched.Fixed{P: sc.HomePlacement()},
		// No scheduling rounds during warm-up: only monitoring history.
		RoundTicks: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := mgr.Run(15, nil); err != nil {
		b.Fatal(err)
	}
	p := mgr.BuildProblem()
	if len(p.VMs) == 0 || len(p.Hosts) == 0 {
		b.Fatalf("%s: empty problem", name)
	}
	return p, sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
}

// BenchmarkSLAQuery measures the SLA estimation path a (VM, DC) table
// fill drives, over one fleet-sized sweep of 256 queries per op: Single
// is the per-VM proc-split query (one k-NN fulfilment + one M5P response
// time each), Batch runs the same 256 rows through the batched inference
// path, which amortizes kd-tree descents and shares one traversal
// scratch. Both are steady-state and gated via BENCH_sched.json.
func BenchmarkSLAQuery(b *testing.B) {
	bundle, err := experiments.TrainedBundle(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	problem := syntheticProblem(256, 16)
	n := len(problem.VMs)
	var s predict.Scratch
	rows := make([]float64, 0, n*predict.SLAFeatureDims)
	grants := make([]float64, n)
	for i := range problem.VMs {
		vm := &problem.VMs[i]
		grants[i] = vm.Observed.CPUPct
		rows = predict.VMSLAFeaturesAppend(rows, vm.Total, grants[i], 0, float64(vm.QueueLen))
	}
	slaProc := make([]float64, n)
	rtProc := make([]float64, n)
	b.Run("Single", func(b *testing.B) {
		for q := range problem.VMs { // warm the inference scratch across all rows
			vm := &problem.VMs[q]
			bundle.PredictSLAProcBuf(&s, vm.Total, grants[q], 0, float64(vm.QueueLen))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for q := range problem.VMs {
				vm := &problem.VMs[q]
				slaProc[q], rtProc[q] = bundle.PredictSLAProcBuf(&s, vm.Total, grants[q], 0, float64(vm.QueueLen))
			}
		}
	})
	b.Run("Batch", func(b *testing.B) {
		bundle.PredictSLAProcBatchBuf(&s, rows, n, slaProc, rtProc) // warm scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bundle.PredictSLAProcBatchBuf(&s, rows, n, slaProc, rtProc)
		}
	})
}

// BenchmarkChurn measures the dynamic-workload hot paths on a fleet that
// has lived through an arrival storm: Step is the churn-enabled engine
// tick (slot gaps, compacted fill list), Round is one scheduling decision
// over the churned VM set through the allocation-free ScheduleInto. Both
// are steady-state (churn events land between ticks) and therefore
// zero-alloc — the properties benchgate pins via BENCH_sched.json.
func BenchmarkChurn(b *testing.B) {
	bundle, err := experiments.TrainedBundle(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scenario.Build(scenario.MustPreset(scenario.ChurnStorm, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		b.Fatal(err)
	}
	cost := sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
	mgr, err := core.NewManager(core.ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(cost, sched.NewOverbooked()),
		RoundTicks: 10,
		Lifecycle:  lifecycle.NewRunner(sc.Script),
	})
	if err != nil {
		b.Fatal(err)
	}
	// Live through the first storm so the population carries churn scars:
	// admitted arrivals, retired slots, a free-list in use.
	if err := mgr.Run(130, nil); err != nil {
		b.Fatal(err)
	}
	eng := sc.World.Engine
	b.Run("Step", func(b *testing.B) {
		b.ReportMetric(float64(eng.NumActiveVMs()), "liveVMs")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Step()
		}
	})
	b.Run("Round", func(b *testing.B) {
		problem := mgr.BuildProblem()
		bf := sched.NewBestFit(cost, sched.NewML(bundle))
		placement := make(model.Placement, len(problem.VMs))
		for i := 0; i < 2; i++ { // warm the reusable round storage
			clear(placement)
			if err := bf.ScheduleInto(problem, placement); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(problem.VMs)), "vms")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(placement)
			if err := bf.ScheduleInto(problem, placement); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFailover measures the scheduling decision the fault layer
// leans on: one round over a fleet that just lost a host — the victim is
// out of the candidate set and its evicted guests sit homeless in the
// re-home backlog, so the round must place them from scratch while
// everything else holds steady. Zero-alloc like every other ScheduleInto
// path; benchgate pins it via BENCH_sched.json.
func BenchmarkFailover(b *testing.B) {
	bundle, err := experiments.TrainedBundle(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scenario.Build(scenario.MustPreset(scenario.ChurnStorm, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	if err := sc.World.PlaceInitial(sc.HomePlacement()); err != nil {
		b.Fatal(err)
	}
	cost := sched.NewCostModel(sc.Topology, power.Atom{}, 1.0/6)
	fr := lifecycle.NewFaultRunner(nil)
	mgr, err := core.NewManager(core.ManagerConfig{
		World:      sc.World,
		Scheduler:  sched.NewBestFit(cost, sched.NewOverbooked()),
		RoundTicks: 10,
		Lifecycle:  lifecycle.NewRunner(sc.Script),
		Faults:     fr,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := mgr.Run(130, nil); err != nil {
		b.Fatal(err)
	}
	// Crash the busiest host mid-run: its guests become the re-home
	// backlog the benchmarked round has to absorb.
	victim, most := model.NoPM, -1
	st := sc.World.State()
	for j := 0; j < sc.World.NumPMs(); j++ {
		pm := sc.World.PMSpecAt(j).ID
		if n := len(st.GuestsOf(pm)); n > most {
			victim, most = pm, n
		}
	}
	evicted := st.GuestsOf(victim)
	if err := sc.World.FailPM(victim); err != nil {
		b.Fatal(err)
	}
	fr.RecordEvictions(130, evicted, false)
	b.Run("Round", func(b *testing.B) {
		problem := mgr.BuildProblem()
		bf := sched.NewBestFit(cost, sched.NewML(bundle))
		placement := make(model.Placement, len(problem.VMs))
		for i := 0; i < 2; i++ { // warm the reusable round storage
			clear(placement)
			if err := bf.ScheduleInto(problem, placement); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(problem.VMs)), "vms")
		b.ReportMetric(float64(len(evicted)), "backlog")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(placement)
			if err := bf.ScheduleInto(problem, placement); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkloadGeneration measures trace synthesis for a full fleet
// tick through the dense Fill contract.
func BenchmarkWorkloadGeneration(b *testing.B) {
	sc, err := scenario.Build(scenario.Spec{
		Name: "bench-trace", Seed: benchSeed,
		DCs: 4, PMsPerDC: 2, VMs: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]model.VMID, len(sc.VMs))
	dst := make([]model.LoadVector, len(sc.VMs))
	for i, vm := range sc.VMs {
		ids[i] = vm.ID
		dst[i] = make(model.LoadVector, 4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Generator.Fill(i%model.TicksPerDay, ids, dst)
	}
}

// syntheticProblem builds a larger scheduling round for the solver benches
// and the steady-state allocation tests.
func syntheticProblem(vms, hosts int) *sched.Problem {
	stream := rng.New(benchSeed, 99)
	p := &sched.Problem{}
	for i := 0; i < vms; i++ {
		lv := make(model.LoadVector, 4)
		lv[i%4] = model.Load{
			RPS:        stream.Uniform(5, 80),
			BytesInReq: 500, BytesOutRq: 20000,
			CPUTimeReq: stream.Uniform(0.004, 0.02),
		}
		info := sched.VMInfo{
			Spec: model.VMSpec{
				ID: model.VMID(i), ImageSizeGB: 4, BaseMemMB: 256, MaxMemMB: 1024,
				Terms: model.DefaultSLATerms, PriceEURh: 0.17,
			},
			Load: lv, Total: lv.Total(),
			Current: model.NoPM, CurrentDC: -1,
			Observed: model.Resources{
				CPUPct: stream.Uniform(20, 200),
				MemMB:  stream.Uniform(256, 700),
				BWMbps: stream.Uniform(2, 40),
			},
			HasObserved: true,
		}
		p.VMs = append(p.VMs, info)
	}
	for j := 0; j < hosts; j++ {
		p.Hosts = append(p.Hosts, sched.HostInfo{Spec: model.PMSpec{
			ID: model.PMID(j), DC: model.DCID(j % 4),
			Capacity: model.Resources{CPUPct: 400, MemMB: 4096, BWMbps: 1000},
			Cores:    4,
		}})
	}
	return p
}
