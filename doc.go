// Package repro is a production-quality Go reproduction of Berral,
// Gavaldà and Torres, "Power-aware Multi-DataCenter Management using
// Machine Learning" (ICPP 2013), built entirely on the Go standard
// library.
//
// The decision stack reproduces the paper and its evaluation:
//
//   - internal/sched — the Figure 3 profit objective (SLA revenue −
//     marginal energy − migration penalty) and the Algorithm 1
//     schedulers: Best-Fit, exhaustive, first/worst-fit heuristics, with
//     allocation-free rounds, delta rounds (cross-round memoization) and
//     candidate pruning (host equivalence-class shortlists).
//   - internal/core — the MAPE manager driving monitor → analyze → plan
//     → execute per tick, admission control, fault policy (re-home,
//     degrade, shed) and the hierarchical two-layer scheduler.
//   - internal/predict — the seven Table I datasets and predictor
//     bundle, harvested from monitored runs; online retraining.
//   - internal/ml — M5P model trees, linear regression, k-NN and bagged
//     ensembles, written from scratch with flat zero-alloc inference.
//
// The simulation substrate stands in for the paper's
// Atom/VirtualBox/OpenNebula testbed:
//
//   - internal/sim — the flat-state Engine (structure-of-arrays truth,
//     zero-alloc ticks, per-DC sharded resolution) and the map-shaped
//     World adapter.
//   - internal/cluster — inventory, placement state, fOccupation.
//   - internal/trace — Li-BCN-like workload synthesis and CSV replay.
//   - internal/network — the Table II topology, client latencies and
//     energy-price schedules.
//   - internal/queueing — the processor-sharing response-time model.
//   - internal/power — the Atom power curve, PUE and energy accounting.
//   - internal/sla — SLA(RT), revenue, penalties and the money ledger.
//   - internal/monitor — noisy windowed observations over ring buffers.
//   - internal/lifecycle — deterministic VM churn and fault scripts
//     (arrivals, departures, crashes, outages, maintenance drains).
//
// Everything above assembles worlds through internal/scenario
// (declarative Spec, named presets from the paper's experiments up to
// the heavy xlarge and hyperscale fleets) and runs studies through
// internal/experiments (one harness per table and figure) and
// internal/sweep (the scenario × policy × seed matrix with
// deterministic JSON/CSV output).
//
// Shared leaves: internal/model (IDs, Resources, Load, Placement),
// internal/rng (named deterministic PCG streams), internal/par (bounded
// parallel helpers), internal/stats (Welford accumulators) and
// internal/report (tables, CSV, series rendering).
//
// The benchmarks in bench_test.go pin the perf baselines committed to
// BENCH_sched.json; see DESIGN.md for the system contracts and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
