// Package repro is a production-quality Go reproduction of Berral,
// Gavaldà and Torres, "Power-aware Multi-DataCenter Management using
// Machine Learning" (ICPP 2013).
//
// The repository implements the paper's full stack from scratch on the Go
// standard library: the multi-datacenter simulator standing in for the
// Atom/VirtualBox/OpenNebula testbed (internal/sim and its substrates), a
// learning library with M5P model trees, linear regression and k-NN
// (internal/ml), the seven predictors of Table I (internal/predict), the
// profit-driven schedulers of Figure 3 and Algorithm 1 (internal/sched),
// the hierarchical two-layer manager (internal/core), and one experiment
// harness per table and figure of the evaluation (internal/experiments).
//
// The benchmarks in bench_test.go regenerate every table and figure; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-
// measured results.
package repro
