package repro

import (
	"testing"

	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sched"
)

// TestScheduleSteadyStateAllocsWithMetrics is the scheduling-round
// counterpart of the engine's instrumented alloc gate: a Best-Fit round
// with metric sinks attached must stay allocation-free once warmed,
// exactly like the uninstrumented contract in TestScheduleSteadyStateAllocs.
func TestScheduleSteadyStateAllocsWithMetrics(t *testing.T) {
	cost := sched.NewCostModel(network.PaperTopology(), power.Atom{}, 1.0/6)
	problem := syntheticProblem(24, 16)
	bf := sched.NewBestFit(cost, sched.NewOverbooked())
	reg := obs.NewRegistry()
	met := sched.NewSchedMetrics(reg)
	bf.SetMetrics(met)
	placement := make(model.Placement, len(problem.VMs))
	for i := 0; i < 2; i++ { // warm the reusable round, scratch and map storage
		clear(placement)
		if err := bf.ScheduleInto(problem, placement); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		clear(placement)
		if err := bf.ScheduleInto(problem, placement); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented ScheduleInto allocates %.1f objects per round, want 0", allocs)
	}
	// 2 warmup rounds + the 6 AllocsPerRun runs (n+1).
	if got := met.Rounds.Value(); got != 8 {
		t.Fatalf("rounds counter = %d, want 8", got)
	}
	if met.CandidatesScored.Value() == 0 || met.RoundSeconds.Count() != 8 {
		t.Fatal("round metrics were not recorded")
	}
}

// BenchmarkMetricsRecord is the benchgated record path: one counter add,
// one gauge store and one histogram observe per iteration, pinned at
// 0 allocs/op in BENCH_sched.json.
func BenchmarkMetricsRecord(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_events_total", "bench counter")
	g := reg.Gauge("bench_level", "bench gauge")
	h := reg.Histogram("bench_lat_seconds", "bench histogram", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i%17) * 1e-4)
	}
}
