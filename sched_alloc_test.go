package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/sched"
)

// TestScheduleSteadyStateAllocs enforces the allocation contract of the
// scheduling hot path: once warmed, a Best-Fit round through ScheduleInto
// allocates nothing — the only allocation Schedule itself performs is the
// returned placement map.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	bundle, err := experiments.TrainedBundle(benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	cost := sched.NewCostModel(network.PaperTopology(), power.Atom{}, 1.0/6)
	for _, tc := range []struct {
		name string
		est  sched.Estimator
	}{
		{"observed", sched.NewObserved()},
		{"overbooked", sched.NewOverbooked()},
		{"ml", sched.NewML(bundle)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			problem := syntheticProblem(24, 16)
			bf := sched.NewBestFit(cost, tc.est)
			placement := make(model.Placement, len(problem.VMs))
			// Warm the reusable round, scratch and map storage.
			for i := 0; i < 2; i++ {
				clear(placement)
				if err := bf.ScheduleInto(problem, placement); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				clear(placement)
				if err := bf.ScheduleInto(problem, placement); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state ScheduleInto allocates %.1f objects per round, want 0", allocs)
			}
			if len(placement) != len(problem.VMs) {
				t.Fatalf("placement incomplete: %d/%d", len(placement), len(problem.VMs))
			}
		})
	}
}

// TestScheduleDeltaSteadyStateAllocs extends the zero-alloc contract to
// delta rounds: once the per-VM memo is warm, a steady fleet reuses every
// row without allocating. (Churn under delta may allocate — new VM
// identities insert into the memo's id→slot map — so only the steady
// state is gated.)
func TestScheduleDeltaSteadyStateAllocs(t *testing.T) {
	bundle, err := experiments.TrainedBundle(benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	cost := sched.NewCostModel(network.PaperTopology(), power.Atom{}, 1.0/6)
	problem := syntheticProblem(24, 16)
	bf := sched.NewBestFit(cost, sched.NewML(bundle))
	bf.Delta = true
	placement := make(model.Placement, len(problem.VMs))
	for i := 0; i < 2; i++ {
		clear(placement)
		if err := bf.ScheduleInto(problem, placement); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		clear(placement)
		if err := bf.ScheduleInto(problem, placement); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state delta ScheduleInto allocates %.1f objects per round, want 0", allocs)
	}
	if st := bf.LastRoundStats(); st.RowsReused != len(problem.VMs) {
		t.Fatalf("steady delta reused %d of %d rows", st.RowsReused, len(problem.VMs))
	}
}

// TestScheduleChurnAllocs extends the allocation contract to workload
// churn: a Best-Fit whose round storage was grown once keeps allocating
// nothing while the VM set shrinks and grows between rounds (the problem
// sizes a churning manager hands it), as long as no round exceeds the
// high-water mark.
func TestScheduleChurnAllocs(t *testing.T) {
	bundle, err := experiments.TrainedBundle(benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	cost := sched.NewCostModel(network.PaperTopology(), power.Atom{}, 1.0/6)
	bf := sched.NewBestFit(cost, sched.NewML(bundle))
	big := syntheticProblem(30, 16)
	mid := syntheticProblem(22, 16)
	small := syntheticProblem(9, 16)
	placement := make(model.Placement, len(big.VMs))
	// Warm every size once (the high-water mark is big's).
	for _, p := range []*sched.Problem{big, mid, small, big} {
		clear(placement)
		if err := bf.ScheduleInto(p, placement); err != nil {
			t.Fatal(err)
		}
	}
	sizes := []*sched.Problem{big, small, mid, big, mid, small}
	i := 0
	allocs := testing.AllocsPerRun(6, func() {
		p := sizes[i%len(sizes)]
		i++
		clear(placement)
		if err := bf.ScheduleInto(p, placement); err != nil {
			t.Fatal(err)
		}
		if len(placement) != len(p.VMs) {
			t.Fatalf("placement incomplete: %d/%d", len(placement), len(p.VMs))
		}
	})
	if allocs != 0 {
		t.Fatalf("churning ScheduleInto allocates %.1f objects per round, want 0", allocs)
	}
}
