package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/power"
	"repro/internal/sched"
)

// TestScheduleSteadyStateAllocs enforces the allocation contract of the
// scheduling hot path: once warmed, a Best-Fit round through ScheduleInto
// allocates nothing — the only allocation Schedule itself performs is the
// returned placement map.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	bundle, err := experiments.TrainedBundle(benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	cost := sched.NewCostModel(network.PaperTopology(), power.Atom{}, 1.0/6)
	for _, tc := range []struct {
		name string
		est  sched.Estimator
	}{
		{"observed", sched.NewObserved()},
		{"overbooked", sched.NewOverbooked()},
		{"ml", sched.NewML(bundle)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			problem := syntheticProblem(24, 16)
			bf := sched.NewBestFit(cost, tc.est)
			placement := make(model.Placement, len(problem.VMs))
			// Warm the reusable round, scratch and map storage.
			for i := 0; i < 2; i++ {
				clear(placement)
				if err := bf.ScheduleInto(problem, placement); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				clear(placement)
				if err := bf.ScheduleInto(problem, placement); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state ScheduleInto allocates %.1f objects per round, want 0", allocs)
			}
			if len(placement) != len(problem.VMs) {
				t.Fatalf("placement incomplete: %d/%d", len(placement), len(problem.VMs))
			}
		})
	}
}
